package experiments

import (
	"strings"
	"testing"
)

// The experiment suite is exercised end-to-end at the small scale. Each
// experiment's internal shape checks (who wins, by what factor) are what
// make these tests meaningful — an experiment that produces the wrong
// shape returns an error.

func small(t *testing.T) Scale {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	return Small()
}

func TestTableI(t *testing.T) {
	r, err := TableI(small(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 27 {
		t.Errorf("Table I rows = %d, want every metric", len(r.Rows))
	}
	if !strings.Contains(r.String(), "VecPercent") {
		t.Error("render missing VecPercent")
	}
}

func TestOverhead(t *testing.T) {
	r, err := Overhead(small(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Errorf("rows = %d", len(r.Rows))
	}
}

func TestCronMode(t *testing.T) {
	r, err := CronMode(small(t))
	if err != nil {
		t.Fatal(err)
	}
	// Data loss on node failure is the defining property of Fig 1.
	found := false
	for _, row := range r.Rows {
		if strings.Contains(row.Label, "lost") && row.Measured != "0" {
			found = true
		}
	}
	if !found {
		t.Error("cron mode reported no loss")
	}
}

func TestDaemonMode(t *testing.T) {
	r, err := DaemonMode(small(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if strings.Contains(row.Label, "lost") && row.Measured != "0" {
			t.Errorf("daemon mode lost data: %+v", row)
		}
	}
}

func TestPortalQuery(t *testing.T) {
	if _, err := PortalQuery(small(t)); err != nil {
		t.Fatal(err)
	}
}

func TestWRFHistograms(t *testing.T) {
	r, err := WRFHistograms(small(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Detail, "max metadata reqs") {
		t.Error("histogram detail missing")
	}
}

func TestJobTimeseries(t *testing.T) {
	r, err := JobTimeseries(small(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Detail, "CPU user fraction per node") {
		t.Error("series detail missing")
	}
}

func TestWRFCaseStudy(t *testing.T) {
	if _, err := WRFCaseStudy(small(t)); err != nil {
		t.Fatal(err)
	}
}

func TestIOCorrelations(t *testing.T) {
	if _, err := IOCorrelations(small(t)); err != nil {
		t.Fatal(err)
	}
}

func TestPopulationSurvey(t *testing.T) {
	if _, err := PopulationSurvey(small(t)); err != nil {
		t.Fatal(err)
	}
}

func TestTSDBInterference(t *testing.T) {
	if _, err := TSDBInterference(small(t)); err != nil {
		t.Fatal(err)
	}
}

func TestSharedNode(t *testing.T) {
	if _, err := SharedNode(small(t)); err != nil {
		t.Fatal(err)
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	sc := small(t)
	results, err := All(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 {
		t.Fatalf("results = %d, want 12", len(results))
	}
	ids := map[string]bool{}
	for _, r := range results {
		ids[r.ID] = true
		if r.Title == "" || len(r.Rows) == 0 {
			t.Errorf("%s: empty result", r.ID)
		}
		if r.String() == "" {
			t.Errorf("%s: empty render", r.ID)
		}
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}
