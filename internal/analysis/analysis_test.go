package analysis

import (
	"fmt"
	"math/rand"
	"testing"

	"gostats/internal/core"
	"gostats/internal/reldb"
)

func mkRow(id, user, exe string, m core.Summary, nodes int, runtime float64) *reldb.JobRow {
	return &reldb.JobRow{
		JobID: id, User: user, Exe: exe, Queue: "normal", Status: "COMPLETED",
		Nodes: nodes, StartTime: 1000, EndTime: 1000 + runtime, SubmitTime: 900,
		Metrics: m,
	}
}

func TestProductionFilters(t *testing.T) {
	db := reldb.New()
	db.Insert(
		mkRow("long", "u", "x", core.Summary{}, 1, 7200),
		mkRow("short", "u", "x", core.Summary{}, 1, 600),
	)
	failed := mkRow("failed", "u", "x", core.Summary{}, 1, 7200)
	failed.Status = "FAILED"
	db.Insert(failed)
	rows, err := db.Query(ProductionFilters()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].JobID != "long" {
		t.Errorf("production rows = %v", rows)
	}
}

func TestIOCorrelationsRecoverPlantedSignal(t *testing.T) {
	db := reldb.New()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		io := rng.Float64()
		cpu := 0.95 - 0.5*io + 0.05*rng.NormFloat64()
		m := core.Summary{
			CPUUsage:  cpu,
			MDCReqs:   io * 1000 * (0.5 + rng.Float64()),
			OSCReqs:   io * 2000,
			LnetAveBW: io * 1e8,
		}
		db.Insert(mkRow(fmt.Sprint(i), "u", "x", m, 2, 7200))
	}
	c, err := IOCorrelations(db, ProductionFilters()...)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 3000 {
		t.Errorf("N = %d", c.N)
	}
	// All three correlations must be negative (I/O hurts CPU usage).
	for name, r := range map[string]float64{"mdc": c.MDCReqs, "osc": c.OSCReqs, "lnet": c.LnetAveBW} {
		if r >= -0.1 {
			t.Errorf("correlation %s = %g, want clearly negative", name, r)
		}
	}
	// OSC (noiseless) should correlate more strongly than MDC (noisy).
	if c.OSCReqs > c.MDCReqs {
		t.Errorf("osc %g should be more negative than mdc %g", c.OSCReqs, c.MDCReqs)
	}
}

func TestIOCorrelationsDegenerate(t *testing.T) {
	db := reldb.New()
	db.Insert(mkRow("1", "u", "x", core.Summary{CPUUsage: 0.5}, 1, 7200))
	if _, err := IOCorrelations(db, ProductionFilters()...); err == nil {
		t.Error("single-job correlation accepted")
	}
}

func TestPopulationSurvey(t *testing.T) {
	db := reldb.New()
	gib := float64(1 << 30)
	// 10 jobs: 1 MIC user, 5 vectorized >1% of which 2 >50%, 1 mem hog,
	// 1 idle-node job.
	rows := []*reldb.JobRow{
		mkRow("1", "u", "x", core.Summary{MICUsage: 0.3, VecPercent: 0.6, Idle: 0.9}, 2, 7200),            // mic + vec50
		mkRow("2", "u", "x", core.Summary{VecPercent: 0.8, Idle: 0.9}, 2, 7200),                           // vec50
		mkRow("3", "u", "x", core.Summary{VecPercent: 0.2, Idle: 0.9}, 2, 7200),                           // vec1
		mkRow("4", "u", "x", core.Summary{VecPercent: 0.05, Idle: 0.9}, 2, 7200),                          // vec1
		mkRow("5", "u", "x", core.Summary{VecPercent: 0.02, Idle: 0.9}, 2, 7200),                          // vec1
		mkRow("6", "u", "x", core.Summary{VecPercent: 0.001, MemUsage: 2 * 22 * gib, Idle: 0.9}, 2, 7200), // mem
		mkRow("7", "u", "x", core.Summary{Idle: 0.001}, 4, 7200),                                          // idle nodes
		mkRow("8", "u", "x", core.Summary{Idle: 0.001}, 1, 7200),                                          // 1 node: not idle flag
		mkRow("9", "u", "x", core.Summary{MetaDataRate: 50000, Idle: 0.9}, 2, 7200),                       // high mdr
		mkRow("10", "u", "x", core.Summary{Idle: 0.9}, 2, 7200),
	}
	db.Insert(rows...)
	s, err := PopulationSurvey(db)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total != 10 {
		t.Fatalf("total = %d", s.Total)
	}
	checks := map[string][2]float64{
		"mic":   {s.MICUsers, 0.1},
		"vec1":  {s.Vec1, 0.5},
		"vec50": {s.Vec50, 0.2},
		"mem20": {s.Mem20GB, 0.1},
		"idle":  {s.IdleNodes, 0.1},
		"mdr":   {s.HighMDRate, 0.1},
	}
	for name, c := range checks {
		if c[0] != c[1] {
			t.Errorf("%s = %g, want %g", name, c[0], c[1])
		}
	}
}

func TestPopulationSurveyEmpty(t *testing.T) {
	s, err := PopulationSurvey(reldb.New())
	if err != nil || s.Total != 0 || s.Vec1 != 0 {
		t.Errorf("empty survey = %+v, %v", s, err)
	}
}

func TestWRFStudy(t *testing.T) {
	db := reldb.New()
	// Pathological user u042: 2 jobs at cpu 0.65, mdr 5e5, oc 3e4.
	for i := 0; i < 2; i++ {
		db.Insert(mkRow(fmt.Sprintf("p%d", i), "u042", "wrf.exe",
			core.Summary{CPUUsage: 0.65, MetaDataRate: 5e5, LLiteOpenClose: 3e4}, 2, 7200))
	}
	// Population: 98 clean jobs at cpu 0.82, mdr 4000, oc 2. The two
	// pathological jobs are a small minority, as in the paper (105 of
	// 16,741), so population averages stay near the clean values.
	for i := 0; i < 98; i++ {
		db.Insert(mkRow(fmt.Sprintf("c%d", i), "u100", "wrf.exe",
			core.Summary{CPUUsage: 0.82, MetaDataRate: 4000, LLiteOpenClose: 2}, 4, 7200))
	}
	// Noise: another executable that must not leak in.
	db.Insert(mkRow("other", "u042", "namd2", core.Summary{CPUUsage: 0.1}, 1, 7200))

	cs, err := WRFStudy(db, "wrf.exe", "u042")
	if err != nil {
		t.Fatal(err)
	}
	if cs.UserJobs != 2 || cs.PopJobs != 100 {
		t.Errorf("jobs = %d/%d", cs.UserJobs, cs.PopJobs)
	}
	if cs.UserCPUUsage != 0.65 {
		t.Errorf("user cpu = %g", cs.UserCPUUsage)
	}
	if cs.PopCPUUsage <= cs.UserCPUUsage {
		t.Error("population cpu should exceed the pathological user's")
	}
	if cs.UserMetaDataRate/cs.PopMetaDataRate < 4 {
		t.Errorf("metadata ratio = %g, want large", cs.UserMetaDataRate/cs.PopMetaDataRate)
	}
	if cs.UserOpenClose/cs.PopOpenClose < 40 {
		t.Errorf("open/close ratio = %g, want enormous", cs.UserOpenClose/cs.PopOpenClose)
	}
}

func TestHistograms(t *testing.T) {
	db := reldb.New()
	for i := 0; i < 100; i++ {
		db.Insert(mkRow(fmt.Sprint(i), "u", "wrf.exe",
			core.Summary{MetaDataRate: float64(i)}, 1+i%8, float64(600+i*60)))
	}
	h, err := Histograms(db, 10, reldb.F("exe", "wrf.exe"))
	if err != nil {
		t.Fatal(err)
	}
	if h.Jobs != 100 {
		t.Errorf("jobs = %d", h.Jobs)
	}
	for name, hist := range map[string]int{
		"runtime": h.Runtime.Total(), "nodes": h.Nodes.Total(),
		"wait": h.Wait.Total(), "maxmd": h.MaxMD.Total(),
	} {
		if hist != 100 {
			t.Errorf("%s histogram total = %d", name, hist)
		}
	}
	if _, err := Histograms(db, 10, reldb.F("bogus", 1)); err == nil {
		t.Error("bad filter accepted")
	}
}

func TestTopUsersBy(t *testing.T) {
	db := reldb.New()
	db.Insert(
		mkRow("1", "alice", "x", core.Summary{MetaDataRate: 100}, 1, 7200),
		mkRow("2", "alice", "x", core.Summary{MetaDataRate: 300}, 1, 7200),
		mkRow("3", "bob", "x", core.Summary{MetaDataRate: 1e6}, 1, 7200),
		mkRow("4", "carol", "x", core.Summary{MetaDataRate: 10}, 1, 7200),
	)
	us, err := TopUsersBy(db, "metadatarate", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 2 || us[0].User != "bob" || us[1].User != "alice" {
		t.Errorf("top users = %+v", us)
	}
	if us[1].Jobs != 2 || us[1].Mean != 200 || us[1].Max != 300 {
		t.Errorf("alice stats = %+v", us[1])
	}
	// k=0 returns all.
	all, _ := TopUsersBy(db, "metadatarate", 0)
	if len(all) != 3 {
		t.Errorf("all users = %d", len(all))
	}
	if _, err := TopUsersBy(db, "exe", 1); err == nil {
		t.Error("string field ranking accepted")
	}
}

func TestEnergyStudy(t *testing.T) {
	db := reldb.New()
	// Two users: alice runs 2 jobs at 200 W on 4 nodes for 1 h; bob one
	// job at 300 W on 2 nodes for 2 h.
	for i := 0; i < 2; i++ {
		r := mkRow(fmt.Sprintf("a%d", i), "alice", "x",
			core.Summary{PkgWatts: 200, CoreWatts: 140, DRAMWatts: 20}, 4, 3600)
		db.Insert(r)
	}
	db.Insert(mkRow("b0", "bob", "y",
		core.Summary{PkgWatts: 300, CoreWatts: 210, DRAMWatts: 30}, 2, 7200))

	es, err := Energy(db, 10)
	if err != nil {
		t.Fatal(err)
	}
	if es.Jobs != 3 {
		t.Fatalf("jobs = %d", es.Jobs)
	}
	// Avg package power: (200+200+300)/3.
	want := (200.0 + 200 + 300) / 3
	if es.AvgPkgWatts != want {
		t.Errorf("avg pkg = %g, want %g", es.AvgPkgWatts, want)
	}
	if es.CoreShare < 0.69 || es.CoreShare > 0.71 {
		t.Errorf("core share = %g", es.CoreShare)
	}
	// Energy: alice 2 * 200*4*3600/3.6e6 = 1.6 kWh; bob 300*2*7200/3.6e6 = 1.2 kWh.
	if es.TotalKWh < 2.79 || es.TotalKWh > 2.81 {
		t.Errorf("total kWh = %g, want 2.8", es.TotalKWh)
	}
	if len(es.TopConsumers) != 2 || es.TopConsumers[0].User != "alice" {
		t.Errorf("top consumers = %+v", es.TopConsumers)
	}
	// Empty selection.
	empty, err := Energy(db, 1, reldb.F("user", "ghost"))
	if err != nil || empty.Jobs != 0 {
		t.Errorf("empty study = %+v, %v", empty, err)
	}
}
