// Package analysis implements the paper's §V studies on top of the
// relational job store: the Fig 4 query histograms, the §V-A population
// characterization (vectorization, Xeon Phi uptake, memory headroom,
// idle nodes), the §V-B WRF metadata case study, and the CPU-vs-I/O
// correlation study over production jobs.
package analysis

import (
	"fmt"

	"gostats/internal/reldb"
	"gostats/internal/stats"
)

// ProductionFilters selects the paper's production-job population: jobs
// run in production queues that completed successfully and ran for more
// than an hour.
func ProductionFilters() []reldb.Filter {
	return []reldb.Filter{
		reldb.F("status", "COMPLETED"),
		reldb.F("runtime__gt", 3600.0),
	}
}

// Correlations is the §V-B correlation study result: Pearson r between
// CPU_Usage and each I/O metric over the selected jobs.
type Correlations struct {
	N         int
	MDCReqs   float64
	OSCReqs   float64
	LnetAveBW float64
}

// IOCorrelations computes the correlation study over the filtered jobs.
func IOCorrelations(db *reldb.DB, filters ...reldb.Filter) (Correlations, error) {
	cpu, err := db.Values("cpu_usage", filters...)
	if err != nil {
		return Correlations{}, err
	}
	out := Correlations{N: len(cpu)}
	for _, m := range []struct {
		field string
		dst   *float64
	}{
		{"mdcreqs", &out.MDCReqs},
		{"oscreqs", &out.OSCReqs},
		{"lnetavebw", &out.LnetAveBW},
	} {
		vals, err := db.Values(m.field, filters...)
		if err != nil {
			return Correlations{}, err
		}
		r, err := stats.Pearson(cpu, vals)
		if err != nil {
			return Correlations{}, fmt.Errorf("analysis: %s: %w", m.field, err)
		}
		*m.dst = r
	}
	return out, nil
}

// Survey is the §V-A population characterization.
type Survey struct {
	Total int
	// Fraction of jobs using the Xeon Phi for >1% of cpu time.
	MICUsers float64
	// Fractions of jobs with >1% and >50% of FP operations vectorized.
	Vec1, Vec50 float64
	// Fraction of jobs using more than 20 GB per 32 GB node.
	Mem20GB float64
	// Fraction of multi-node jobs with effectively idle nodes.
	IdleNodes float64
	// Fraction flagged for high metadata rates.
	HighMDRate float64
}

// PopulationSurvey computes the §V-A fractions over the filtered jobs.
func PopulationSurvey(db *reldb.DB, filters ...reldb.Filter) (Survey, error) {
	rows, err := db.Query(filters...)
	if err != nil {
		return Survey{}, err
	}
	s := Survey{Total: len(rows)}
	if s.Total == 0 {
		return s, nil
	}
	mic, vec1, vec50, mem20, idle, mdr := 0, 0, 0, 0, 0, 0
	for _, r := range rows {
		if r.Metrics.MICUsage > 0.01 {
			mic++
		}
		if r.Metrics.VecPercent > 0.01 {
			vec1++
		}
		if r.Metrics.VecPercent > 0.50 {
			vec50++
		}
		if r.Nodes > 0 && r.Metrics.MemUsage/float64(r.Nodes) > 20*float64(1<<30) {
			mem20++
		}
		if r.Nodes > 1 && r.Metrics.Idle < 0.01 {
			idle++
		}
		if r.Metrics.MetaDataRate > 10000 {
			mdr++
		}
	}
	n := float64(s.Total)
	s.MICUsers = float64(mic) / n
	s.Vec1 = float64(vec1) / n
	s.Vec50 = float64(vec50) / n
	s.Mem20GB = float64(mem20) / n
	s.IdleNodes = float64(idle) / n
	s.HighMDRate = float64(mdr) / n
	return s, nil
}

// CaseStudy is the §V-B comparison of one user's application population
// against everyone else running the same executable.
type CaseStudy struct {
	Exe  string
	User string

	UserJobs int
	PopJobs  int // entire population including the user

	UserCPUUsage float64
	PopCPUUsage  float64

	UserMetaDataRate float64
	PopMetaDataRate  float64

	UserOpenClose float64
	PopOpenClose  float64
	// PopExclOpenClose is the open/close rate of the population
	// excluding the user — the paper's "general WRF population" value
	// of 2/s, which the user's storm would otherwise dominate.
	PopExclOpenClose float64
}

// WRFStudy reproduces the §V-B aggregation: average CPU_Usage,
// MetaDataRate and LLiteOpenClose for one user's jobs of an executable
// versus the whole population of that executable.
func WRFStudy(db *reldb.DB, exe, user string, extra ...reldb.Filter) (CaseStudy, error) {
	cs := CaseStudy{Exe: exe, User: user}
	popF := append([]reldb.Filter{reldb.F("exe", exe)}, extra...)
	userF := append(popF, reldb.F("user", user))

	var err error
	if cs.PopJobs, err = db.Count(popF...); err != nil {
		return cs, err
	}
	if cs.UserJobs, err = db.Count(userF...); err != nil {
		return cs, err
	}
	agg := []struct {
		field string
		user  *float64
		pop   *float64
	}{
		{"cpu_usage", &cs.UserCPUUsage, &cs.PopCPUUsage},
		{"metadatarate", &cs.UserMetaDataRate, &cs.PopMetaDataRate},
		{"lliteopenclose", &cs.UserOpenClose, &cs.PopOpenClose},
	}
	for _, a := range agg {
		if *a.user, err = db.Avg(a.field, userF...); err != nil {
			return cs, err
		}
		if *a.pop, err = db.Avg(a.field, popF...); err != nil {
			return cs, err
		}
	}
	exclF := append(popF, reldb.F("user__ne", user))
	if cs.PopExclOpenClose, err = db.Avg("lliteopenclose", exclF...); err != nil {
		return cs, err
	}
	return cs, nil
}

// QueryHistograms is the Fig 4 quartet: after every portal query, jobs
// versus runtime, node count, queue wait and maximum metadata requests.
type QueryHistograms struct {
	Jobs    int
	Runtime *stats.Histogram
	Nodes   *stats.Histogram
	Wait    *stats.Histogram
	MaxMD   *stats.Histogram
}

// histogramFields is the Fig 4 quartet's field set.
var histogramFields = []string{"runtime", "nodes", "waittime", "metadatarate"}

// Histograms builds the Fig 4 histograms for the filtered jobs in a
// single sweep (one filter scan + one projection pass via reldb.Stats,
// instead of one full query per metric).
func Histograms(db *reldb.DB, bins int, filters ...reldb.Filter) (*QueryHistograms, error) {
	fs, err := db.Stats(histogramFields, filters...)
	if err != nil {
		return nil, err
	}
	return histogramsFromStats(fs, bins), nil
}

// HistogramsRows builds the Fig 4 histograms from an already-filtered
// row set — the portal calls this with the rows it just fetched for
// display, avoiding any second pass over the table.
func HistogramsRows(rows []*reldb.JobRow, bins int) (*QueryHistograms, error) {
	fs, err := reldb.StatsRows(rows, histogramFields...)
	if err != nil {
		return nil, err
	}
	return histogramsFromStats(fs, bins), nil
}

func histogramsFromStats(fs map[string]*reldb.FieldStats, bins int) *QueryHistograms {
	if bins <= 0 {
		bins = 20
	}
	return &QueryHistograms{
		Jobs:    fs["runtime"].Count,
		Runtime: stats.AutoHistogram(fs["runtime"].Values, bins),
		Nodes:   stats.AutoHistogram(fs["nodes"].Values, bins),
		Wait:    stats.AutoHistogram(fs["waittime"].Values, bins),
		MaxMD:   stats.AutoHistogram(fs["metadatarate"].Values, bins),
	}
}

// TopUsersBy returns the top-k users ranked by the mean of a numeric
// field over their jobs (used to attribute Fig 4's outliers to a user).
func TopUsersBy(db *reldb.DB, field string, k int, filters ...reldb.Filter) ([]UserStat, error) {
	rows, err := db.Query(filters...)
	if err != nil {
		return nil, err
	}
	byUser := map[string]*stats.Online{}
	for _, r := range rows {
		v, err := reldb.Value(r, field)
		if err != nil {
			return nil, err
		}
		o := byUser[r.User]
		if o == nil {
			o = &stats.Online{}
			byUser[r.User] = o
		}
		o.Add(v)
	}
	out := make([]UserStat, 0, len(byUser))
	for u, o := range byUser {
		out = append(out, UserStat{User: u, Jobs: o.N(), Mean: o.Mean(), Max: o.Max()})
	}
	sortUserStats(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// UserStat is one user's aggregate for a ranking.
type UserStat struct {
	User string
	Jobs int
	Mean float64
	Max  float64
}

func sortUserStats(us []UserStat) {
	for i := 1; i < len(us); i++ {
		for j := i; j > 0 && us[j].Mean > us[j-1].Mean; j-- {
			us[j], us[j-1] = us[j-1], us[j]
		}
	}
}

// EnergyStudy is the §I-C energy-use analysis: RAPL power broken down by
// plane (package, cores, DRAM), aggregate energy, and the heaviest
// consumers.
type EnergyStudy struct {
	Jobs         int
	AvgPkgWatts  float64 // mean per-node package power across jobs
	AvgCoreWatts float64
	AvgDRAMWatts float64
	CoreShare    float64    // core-plane fraction of package power
	DRAMShare    float64    // DRAM plane relative to package power
	TotalKWh     float64    // node-summed energy over the selection
	TopConsumers []UserStat // users ranked by consumed kWh
}

// Energy computes the energy breakdown over the filtered jobs.
func Energy(db *reldb.DB, topK int, filters ...reldb.Filter) (EnergyStudy, error) {
	rows, err := db.Query(filters...)
	if err != nil {
		return EnergyStudy{}, err
	}
	es := EnergyStudy{Jobs: len(rows)}
	if es.Jobs == 0 {
		return es, nil
	}
	byUser := map[string]*stats.Online{}
	var pkg, core, dram stats.Online
	for _, r := range rows {
		m := r.Metrics
		pkg.Add(m.PkgWatts)
		core.Add(m.CoreWatts)
		dram.Add(m.DRAMWatts)
		kwh := m.PkgWatts * float64(r.Nodes) * r.RunTime() / 3.6e6
		es.TotalKWh += kwh
		o := byUser[r.User]
		if o == nil {
			o = &stats.Online{}
			byUser[r.User] = o
		}
		o.Add(kwh)
	}
	es.AvgPkgWatts = pkg.Mean()
	es.AvgCoreWatts = core.Mean()
	es.AvgDRAMWatts = dram.Mean()
	if es.AvgPkgWatts > 0 {
		es.CoreShare = es.AvgCoreWatts / es.AvgPkgWatts
		es.DRAMShare = es.AvgDRAMWatts / es.AvgPkgWatts
	}
	for u, o := range byUser {
		es.TopConsumers = append(es.TopConsumers,
			UserStat{User: u, Jobs: o.N(), Mean: o.Mean() * float64(o.N()), Max: o.Max()})
	}
	sortUserStats(es.TopConsumers)
	if topK > 0 && len(es.TopConsumers) > topK {
		es.TopConsumers = es.TopConsumers[:topK]
	}
	return es, nil
}
