package core

import (
	"math"
	"testing"

	"gostats/internal/chip"
	"gostats/internal/cluster"
	"gostats/internal/model"
	"gostats/internal/schema"
	"gostats/internal/workload"
)

// buildJob constructs a hand-made two-node job with exactly known counter
// series so metric arithmetic can be verified against paper definitions.
//
// Timeline: samples at t = 0, 600, 1200 (duration 1200 s).
func buildJob(t *testing.T) (*model.JobData, *schema.Registry) {
	t.Helper()
	reg := schema.DefaultRegistry()
	jd := model.NewJobData("42")

	addSeries := func(host string, c schema.Class, inst string, vals [][]uint64) {
		hd := jd.Host(host)
		for i, v := range vals {
			hd.Append(float64(i)*600, model.Record{Class: c, Instance: inst, Values: v})
		}
	}

	// cpu schema: user nice system idle iowait irq softirq (jiffies).
	// Host A: per interval, user 48000 of 60000 total -> usage 0.8.
	addSeries("a", schema.ClassCPU, "0", [][]uint64{
		{0, 0, 0, 0, 0, 0, 0},
		{48000, 0, 6000, 6000, 0, 0, 0},
		{96000, 0, 12000, 12000, 0, 0, 0},
	})
	// Host B: user 24000 of 60000 -> usage 0.4 (imbalance: idle = 0.5).
	addSeries("b", schema.ClassCPU, "0", [][]uint64{
		{0, 0, 0, 0, 0, 0, 0},
		{24000, 0, 0, 36000, 0, 0, 0},
		{48000, 0, 0, 72000, 0, 0, 0},
	})

	// MDC: host A rates 1000/s then 2000/s; host B zero.
	// wait counters: 100 us per request.
	addSeries("a", schema.ClassMDC, "m0", [][]uint64{
		{0, 0},
		{600000, 60000000},
		{1800000, 180000000},
	})
	addSeries("b", schema.ClassMDC, "m0", [][]uint64{
		{0, 0}, {0, 0}, {0, 0},
	})

	// PMC on host A only core 0: cycles 1.2e9/interval, instrs 0.6e9,
	// scalar 1.2e8, vector 0.6e8, loads 6e8, l1 5.4e8, l2 0.3e8, llc 0.2e8.
	mk := func(mult uint64) []uint64 {
		return []uint64{
			1200000000 * mult, 600000000 * mult, 120000000 * mult,
			60000000 * mult, 600000000 * mult, 540000000 * mult,
			30000000 * mult, 20000000 * mult,
		}
	}
	addSeries("a", schema.ClassPMC, "0", [][]uint64{mk(0), mk(1), mk(2)})
	addSeries("b", schema.ClassPMC, "0", [][]uint64{mk(0), mk(1), mk(2)})

	// Memory gauge: host A 8 GiB then 16 GiB then 12 GiB; host B 4 GiB flat.
	gib := func(n uint64) uint64 { return n << 30 }
	memRow := func(used uint64) []uint64 { return []uint64{gib(32), used, gib(32) - used, 0, 0} }
	addSeries("a", schema.ClassMem, "0", [][]uint64{
		memRow(gib(8)), memRow(gib(16)), memRow(gib(12)),
	})
	addSeries("b", schema.ClassMem, "0", [][]uint64{
		memRow(gib(4)), memRow(gib(4)), memRow(gib(4)),
	})

	// Lnet: host A 1e8 bytes per interval rx, no tx.
	addSeries("a", schema.ClassLnet, "lnet", [][]uint64{
		{0, 0}, {100000000, 0}, {200000000, 0},
	})
	addSeries("b", schema.ClassLnet, "lnet", [][]uint64{
		{0, 0}, {0, 0}, {0, 0},
	})

	// IB: host A rx = lnet + 2e8 MPI bytes per interval; pkts 1e5/interval.
	addSeries("a", schema.ClassIB, "p1", [][]uint64{
		{0, 0, 0, 0},
		{300000000, 0, 100000, 0},
		{600000000, 0, 200000, 0},
	})
	addSeries("b", schema.ClassIB, "p1", [][]uint64{
		{0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0},
	})

	return jd, reg
}

func TestComputeAverageAndMaxMetrics(t *testing.T) {
	jd, reg := buildJob(t)
	s, err := Compute(jd, reg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 2 || s.Duration != 1200 {
		t.Errorf("nodes/duration = %d/%g", s.Nodes, s.Duration)
	}

	// MDCReqs: host A ARC = 1.8e6/1200 = 1500; host B 0 -> mean 750.
	if !close(s.MDCReqs, 750, 1e-9) {
		t.Errorf("MDCReqs = %g, want 750", s.MDCReqs)
	}
	// MetaDataRate: max over intervals of node-summed rate = 2000 (2nd interval).
	if !close(s.MetaDataRate, 2000, 1e-9) {
		t.Errorf("MetaDataRate = %g, want 2000", s.MetaDataRate)
	}
	// MDCWait: avg wait rate / avg req rate. Host A wait ARC = 1.8e8/1200
	// = 150000 us/s; host B 0 -> mean 75000. 75000/750 = 100 us.
	if !close(s.MDCWait, 100, 1e-9) {
		t.Errorf("MDCWait = %g, want 100", s.MDCWait)
	}

	// CPU usage: (0.8 + 0.4)/2 = 0.6; idle = 0.4/0.8 = 0.5.
	if !close(s.CPUUsage, 0.6, 1e-9) {
		t.Errorf("CPUUsage = %g, want 0.6", s.CPUUsage)
	}
	if !close(s.Idle, 0.5, 1e-9) {
		t.Errorf("Idle = %g, want 0.5", s.Idle)
	}
	// Both intervals identical -> catastrophe = 1 (no time imbalance).
	if !close(s.Catastrophe, 1, 1e-9) {
		t.Errorf("Catastrophe = %g, want 1", s.Catastrophe)
	}

	// CPI: cycles/instrs = 2.0 per host, ratio of means = 2.0.
	if !close(s.CPI, 2.0, 1e-9) {
		t.Errorf("CPI = %g, want 2", s.CPI)
	}
	// CPLD: cycles / loads = 1.2e9/6e8 = 2.0.
	if !close(s.CPLD, 2.0, 1e-9) {
		t.Errorf("CPLD = %g, want 2", s.CPLD)
	}
	// Flops: scalar rate 2e5/s + 4*vector rate 1e5/s = 6e5/s per node.
	if !close(s.Flops, 6e5, 1) {
		t.Errorf("Flops = %g, want 6e5", s.Flops)
	}
	// VecPercent: vector/(vector+scalar) = 1e5/3e5.
	if !close(s.VecPercent, 1.0/3.0, 1e-9) {
		t.Errorf("VecPercent = %g, want 1/3", s.VecPercent)
	}
	// Load rates: 6e8 loads per 600 s interval per host -> 1e6/s.
	if !close(s.LoadAll, 1e6, 1e-6) {
		t.Errorf("LoadAll = %g, want 1e6", s.LoadAll)
	}
	if !close(s.LoadL1Hits, 9e5, 1e-6) {
		t.Errorf("LoadL1Hits = %g, want 9e5", s.LoadL1Hits)
	}

	// MemUsage: max over samples of node-summed usage = 16+4 = 20 GiB.
	if !close(s.MemUsage, float64(20<<30), 1) {
		t.Errorf("MemUsage = %g, want 20 GiB", s.MemUsage)
	}

	// LnetAveBW: host A (2e8/1200) ~ 166666.7; mean over 2 nodes.
	if !close(s.LnetAveBW, 2e8/1200/2, 1e-6) {
		t.Errorf("LnetAveBW = %g", s.LnetAveBW)
	}
	// LnetMaxBW: both intervals at 1e8/600 node-summed.
	if !close(s.LnetMaxBW, 1e8/600, 1e-6) {
		t.Errorf("LnetMaxBW = %g", s.LnetMaxBW)
	}

	// Internode IB: host A total IB 6e8/1200 = 5e5 B/s, lnet 2e8/1200;
	// MPI = (6e8-2e8)/1200 = 333333 B/s; mean over nodes = 166666.7.
	if !close(s.InternodeIBAveBW, 4e8/1200/2, 1e-6) {
		t.Errorf("InternodeIBAveBW = %g", s.InternodeIBAveBW)
	}
	// PacketSize: bytes per packet = avg bytes rate / avg pkt rate =
	// (6e8/1200)/2 over (2e5/1200)/2 = 3000.
	if !close(s.PacketSize, 3000, 1e-6) {
		t.Errorf("PacketSize = %g, want 3000", s.PacketSize)
	}
}

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestComputeCatastropheDetectsDrop(t *testing.T) {
	reg := schema.DefaultRegistry()
	jd := model.NewJobData("9")
	hd := jd.Host("a")
	// Interval 1: user 54000/60000; interval 2: user 6000/60000 (drop).
	rows := [][]uint64{
		{0, 0, 0, 0, 0, 0, 0},
		{54000, 0, 0, 6000, 0, 0, 0},
		{60000, 0, 0, 60000, 0, 0, 0},
	}
	for i, v := range rows {
		hd.Append(float64(i)*600, model.Record{Class: schema.ClassCPU, Instance: "0", Values: v})
	}
	s, err := Compute(jd, reg)
	if err != nil {
		t.Fatal(err)
	}
	want := (6000.0 / 60000.0) / (54000.0 / 60000.0)
	if !close(s.Catastrophe, want, 1e-9) {
		t.Errorf("Catastrophe = %g, want %g", s.Catastrophe, want)
	}
	// Single host: idle = usage/usage = 1.
	if !close(s.Idle, 1, 1e-9) {
		t.Errorf("Idle = %g, want 1", s.Idle)
	}
}

func TestComputeRolloverCorrection(t *testing.T) {
	reg := schema.DefaultRegistry()
	jd := model.NewJobData("7")
	hd := jd.Host("a")
	// 48-bit PMC cycles counter rolls over between samples; the decoded
	// delta must be small, not ~2^48.
	start := uint64(1<<48) - 1000
	row := func(cyc, ins uint64) []uint64 {
		return []uint64{cyc, ins, 0, 0, 1, 0, 0, 0}
	}
	hd.Append(0, model.Record{Class: schema.ClassPMC, Instance: "0", Values: row(start, 0)})
	hd.Append(600, model.Record{Class: schema.ClassPMC, Instance: "0", Values: row(2000, 1000)})
	// cpu series to establish duration and usage.
	hd.Append(0, model.Record{Class: schema.ClassCPU, Instance: "0", Values: []uint64{0, 0, 0, 0, 0, 0, 0}})
	hd.Append(600, model.Record{Class: schema.ClassCPU, Instance: "0", Values: []uint64{60000, 0, 0, 0, 0, 0, 0}})

	s, err := Compute(jd, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Delta = 3000 cycles over 600 s -> 5 cycles/s.
	wantCycles := 3000.0 / 600.0
	if gotCPI := s.CPI; !close(gotCPI, wantCycles/(1000.0/600.0), 1e-9) {
		t.Errorf("CPI after rollover = %g", gotCPI)
	}
}

func TestComputeCounterResetYieldsZeroNotGarbage(t *testing.T) {
	reg := schema.DefaultRegistry()
	jd := model.NewJobData("8")
	hd := jd.Host("a")
	// 64-bit IB counter goes backwards (node reboot / reset).
	hd.Append(0, model.Record{Class: schema.ClassIB, Instance: "p1", Values: []uint64{5000, 0, 0, 0}})
	hd.Append(600, model.Record{Class: schema.ClassIB, Instance: "p1", Values: []uint64{100, 0, 0, 0}})
	hd.Append(0, model.Record{Class: schema.ClassCPU, Instance: "0", Values: []uint64{0, 0, 0, 0, 0, 0, 0}})
	hd.Append(600, model.Record{Class: schema.ClassCPU, Instance: "0", Values: []uint64{60000, 0, 0, 0, 0, 0, 0}})
	s, err := Compute(jd, reg)
	if err != nil {
		t.Fatal(err)
	}
	if s.InternodeIBAveBW != 0 {
		t.Errorf("reset counter produced bandwidth %g", s.InternodeIBAveBW)
	}
}

func TestComputeErrors(t *testing.T) {
	reg := schema.DefaultRegistry()
	if _, err := Compute(model.NewJobData("x"), reg); err == nil {
		t.Error("empty job accepted")
	}
	jd := model.NewJobData("y")
	jd.Host("a").Append(0, model.Record{Class: schema.ClassCPU, Instance: "0", Values: make([]uint64, 7)})
	if _, err := Compute(jd, reg); err == nil {
		t.Error("single-sample job accepted")
	}
}

func TestComputeMissingDevicesYieldZero(t *testing.T) {
	// A node without Lustre/IB/Phi produces zero metrics, not NaN or error.
	reg := schema.DefaultRegistry()
	jd := model.NewJobData("z")
	hd := jd.Host("a")
	hd.Append(0, model.Record{Class: schema.ClassCPU, Instance: "0", Values: make([]uint64, 7)})
	hd.Append(600, model.Record{Class: schema.ClassCPU, Instance: "0", Values: []uint64{48000, 0, 0, 12000, 0, 0, 0}})
	s, err := Compute(jd, reg)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"MetaDataRate": s.MetaDataRate, "LnetAveBW": s.LnetAveBW,
		"InternodeIBAveBW": s.InternodeIBAveBW, "MICUsage": s.MICUsage,
		"GigEBW": s.GigEBW, "PacketSize": s.PacketSize,
	} {
		if v != 0 || math.IsNaN(v) {
			t.Errorf("%s = %g, want 0", name, v)
		}
	}
	if !close(s.CPUUsage, 0.8, 1e-9) {
		t.Errorf("CPUUsage = %g", s.CPUUsage)
	}
}

func TestComputeEndToEndFromSimulatedJob(t *testing.T) {
	spec := workload.Spec{
		JobID: "e2e", User: "u1", Exe: "wrf.exe", Queue: "normal",
		Nodes: 4, Runtime: 3600, Status: workload.StatusCompleted,
		Model: workload.Steady{Label: "wrf", P: workload.WRFProfile("u1")},
	}
	run, err := cluster.RunJob(spec, chip.StampedeNode(), 600, 17)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compute(run.JobData(), chip.StampedeNode().Registry())
	if err != nil {
		t.Fatal(err)
	}
	p := workload.WRFProfile("u1")
	// CPU usage should track the profile's user fraction.
	if math.Abs(s.CPUUsage-p.CPUUser) > 0.05 {
		t.Errorf("CPUUsage = %g, want ~%g", s.CPUUsage, p.CPUUser)
	}
	// Flops per node should track the demanded flop rate within jitter.
	if math.Abs(s.Flops-p.Flops)/p.Flops > 0.10 {
		t.Errorf("Flops = %g, want ~%g", s.Flops, p.Flops)
	}
	// Vectorization tracks the profile.
	if math.Abs(s.VecPercent-p.VecFrac) > 0.05 {
		t.Errorf("VecPercent = %g, want ~%g", s.VecPercent, p.VecFrac)
	}
	// Memory bandwidth within jitter of demand.
	if math.Abs(s.MemBW-p.MemBW)/p.MemBW > 0.15 {
		t.Errorf("MemBW = %g, want ~%g", s.MemBW, p.MemBW)
	}
	// Memory usage: node-summed, so ~4x the per-node demand.
	if s.MemUsage < float64(p.MemBytes)*3.5 || s.MemUsage > float64(p.MemBytes)*4.5 {
		t.Errorf("MemUsage = %g, want ~4x %d", s.MemUsage, p.MemBytes)
	}
	// A well-balanced job: idle near 1, catastrophe near 1.
	if s.Idle < 0.85 {
		t.Errorf("Idle = %g for balanced job", s.Idle)
	}
	if s.Catastrophe < 0.8 {
		t.Errorf("Catastrophe = %g for steady job", s.Catastrophe)
	}
	// Energy metrics populated (RAPL present on Sandy Bridge).
	if s.PkgWatts < 50 || s.PkgWatts > 500 {
		t.Errorf("PkgWatts = %g", s.PkgWatts)
	}
	if s.DRAMWatts <= 0 {
		t.Errorf("DRAMWatts = %g", s.DRAMWatts)
	}
	// Process data captured.
	if s.MaxVmHWM == 0 {
		t.Error("MaxVmHWM not captured from ps data")
	}
}

func TestComputeIdleNodesJob(t *testing.T) {
	spec := workload.Spec{
		JobID: "idle", User: "u1", Exe: "a.out", Queue: "normal",
		Nodes: 4, Runtime: 3600, Status: workload.StatusCompleted,
		Model: workload.IdleNodes{
			Inner: workload.Steady{Label: "x", P: workload.VectorizedCompute("u1", "a.out", 0.8)},
			Idle:  2,
		},
	}
	run, err := cluster.RunJob(spec, chip.StampedeNode(), 600, 23)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compute(run.JobData(), chip.StampedeNode().Registry())
	if err != nil {
		t.Fatal(err)
	}
	// Half the nodes idle: the idle metric collapses toward 0.
	if s.Idle > 0.1 {
		t.Errorf("Idle = %g for half-idle job, want ~0", s.Idle)
	}
}

func TestTimeSeriesPanels(t *testing.T) {
	spec := workload.Spec{
		JobID: "fig5", User: "u1", Exe: "wrf.exe", Queue: "normal",
		Nodes: 3, Runtime: 3000, Status: workload.StatusCompleted,
		Model: workload.Steady{Label: "wrf", P: workload.WRFProfile("u1")},
	}
	run, err := cluster.RunJob(spec, chip.StampedeNode(), 600, 29)
	if err != nil {
		t.Fatal(err)
	}
	js, err := TimeSeries(run.JobData(), chip.StampedeNode().Registry())
	if err != nil {
		t.Fatal(err)
	}
	if len(js.Panels) != 6 {
		t.Fatalf("panels = %d, want 6 (Fig 5)", len(js.Panels))
	}
	wantNames := []string{"Gigaflops", "Memory Bandwidth", "Memory Usage",
		"Lustre Bandwidth", "Internode IB (MPI)", "CPU User Fraction"}
	for i, p := range js.Panels {
		if p.Name != wantNames[i] {
			t.Errorf("panel %d = %q, want %q", i, p.Name, wantNames[i])
		}
		if len(p.Nodes) != 3 {
			t.Errorf("panel %q has %d node lines", p.Name, len(p.Nodes))
		}
		for _, ns := range p.Nodes {
			if len(ns.Values) != len(p.Times) {
				t.Errorf("panel %q host %s: %d values vs %d times",
					p.Name, ns.Host, len(ns.Values), len(p.Times))
			}
		}
	}
	// CPU panel values are fractions.
	cpu := js.Panels[5]
	for _, ns := range cpu.Nodes {
		for _, v := range ns.Values {
			if v < 0 || v > 1 {
				t.Errorf("cpu fraction out of range: %g", v)
			}
		}
	}
	if _, err := TimeSeries(model.NewJobData("empty"), chip.StampedeNode().Registry()); err == nil {
		t.Error("empty job accepted by TimeSeries")
	}
}

func TestComputeWithArchVectorWidth(t *testing.T) {
	// The same job run on a pre-AVX (SSE, width 2) node must report the
	// demanded flop rate when reduced with the matching width — the
	// per-architecture self-customization end to end.
	cfg, err := chip.ByArch(chip.Westmere)
	if err != nil {
		t.Fatal(err)
	}
	node := chip.NodeConfig{
		Desc:     cfg,
		Topo:     chip.Topology{Sockets: 2, CoresPerSocket: 6, ThreadsPerCore: 2},
		MemBytes: 24 << 30,
	}
	spec := workload.Spec{
		JobID: "sse", User: "u1", Exe: "old.x", Queue: "normal",
		Nodes: 2, Runtime: 3600, Status: workload.StatusCompleted,
		Model: workload.Steady{Label: "v", P: workload.VectorizedCompute("u1", "old.x", 0.6)},
	}
	run, err := cluster.RunJob(spec, node, 600, 31)
	if err != nil {
		t.Fatal(err)
	}
	p := workload.VectorizedCompute("u1", "old.x", 0.6)
	sWrong, err := Compute(run.JobData(), node.Registry()) // assumes AVX width 4
	if err != nil {
		t.Fatal(err)
	}
	sRight, err := ComputeWith(run.JobData(), node.Registry(), cfg.VecWidth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sRight.Flops-p.Flops)/p.Flops > 0.10 {
		t.Errorf("width-2 reduction flops = %g, want ~%g", sRight.Flops, p.Flops)
	}
	// Reducing SSE counters with the AVX width overstates flops.
	if sWrong.Flops <= sRight.Flops {
		t.Errorf("AVX-width reduction should overstate SSE flops: %g <= %g",
			sWrong.Flops, sRight.Flops)
	}
	// VecPercent is width-independent.
	if math.Abs(sRight.VecPercent-0.6) > 0.05 {
		t.Errorf("VecPercent = %g", sRight.VecPercent)
	}
}
