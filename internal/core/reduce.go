package core

import (
	"gostats/internal/model"
	"gostats/internal/schema"
)

// hostReducer performs the per-host counter reductions: total ARC rates,
// per-interval rates, and gauge series, all schema-aware.
type hostReducer struct {
	hd  *model.HostData
	reg *schema.Registry
}

func newHostReducer(hd *model.HostData, reg *schema.Registry) *hostReducer {
	return &hostReducer{hd: hd, reg: reg}
}

// hostDuration returns the host's observation span, taken from its
// longest series (prolog to epilog).
func hostDuration(hd *model.HostData) float64 {
	best := 0.0
	for _, byInst := range hd.Series {
		for _, s := range byInst {
			if d := s.Duration(); d > best {
				best = d
			}
		}
	}
	return best
}

// eventDef resolves the schema definition for class/event, returning the
// column index too. ok is false when the class or event is unknown (the
// device is absent on this node).
func (h *hostReducer) eventDef(c schema.Class, ev string) (schema.EventDef, int, bool) {
	sch := h.reg.Get(c)
	if sch == nil {
		return schema.EventDef{}, 0, false
	}
	i := sch.Index(ev)
	if i < 0 {
		return schema.EventDef{}, 0, false
	}
	return sch.Events[i], i, true
}

// rate returns the host's average rate of change for a cumulative event,
// summed over the class's instances: sum(deltas)/duration. Absent
// devices yield 0.
func (h *hostReducer) rate(c schema.Class, ev string) float64 {
	def, idx, ok := h.eventDef(c, ev)
	if !ok {
		return 0
	}
	byInst := h.hd.Series[c]
	total := 0.0
	dur := 0.0
	for _, s := range byInst {
		if len(s.Samples) < 2 {
			continue
		}
		if d := s.Duration(); d > dur {
			dur = d
		}
		for i := 1; i < len(s.Samples); i++ {
			total += float64(schema.RolloverDelta(
				s.Samples[i-1].Values[idx], s.Samples[i].Values[idx], def))
		}
	}
	if dur <= 0 {
		return 0
	}
	return total / dur
}

// intervalRates returns, for each sampling interval, the event's delta
// rate summed over the class's instances. Interval boundaries follow the
// first instance's timestamps (all instances of one host are sampled in
// the same sweep).
func (h *hostReducer) intervalRates(c schema.Class, ev string) []float64 {
	def, idx, ok := h.eventDef(c, ev)
	if !ok {
		return nil
	}
	byInst := h.hd.Series[c]
	var out []float64
	for _, inst := range h.hd.Instances(c) {
		s := byInst[inst]
		for i := 1; i < len(s.Samples); i++ {
			dt := s.Samples[i].Time - s.Samples[i-1].Time
			if dt <= 0 {
				continue
			}
			r := float64(schema.RolloverDelta(
				s.Samples[i-1].Values[idx], s.Samples[i].Values[idx], def)) / dt
			k := i - 1
			if k < len(out) {
				out[k] += r
			} else {
				out = append(out, r)
			}
		}
	}
	return out
}

// gaugeSeries returns the gauge's per-sample value summed over
// instances, one entry per collection.
func (h *hostReducer) gaugeSeries(c schema.Class, ev string) []float64 {
	_, idx, ok := h.eventDef(c, ev)
	if !ok {
		return nil
	}
	byInst := h.hd.Series[c]
	var out []float64
	for _, inst := range h.hd.Instances(c) {
		s := byInst[inst]
		for i, smp := range s.Samples {
			v := float64(smp.Values[idx])
			if i < len(out) {
				out[i] += v
			} else {
				out = append(out, v)
			}
		}
	}
	return out
}

// cpuTotalRate is the ARC of all cpu jiffy columns summed — the
// denominator of CPU_Usage.
func (h *hostReducer) cpuTotalRate() float64 {
	sch := h.reg.Get(schema.ClassCPU)
	if sch == nil {
		return 0
	}
	total := 0.0
	for _, e := range sch.Events {
		if e.Kind == schema.Event {
			total += h.rate(schema.ClassCPU, e.Name)
		}
	}
	return total
}

// cpuTotalIntervalRates is the per-interval analogue of cpuTotalRate.
func (h *hostReducer) cpuTotalIntervalRates() []float64 {
	sch := h.reg.Get(schema.ClassCPU)
	if sch == nil {
		return nil
	}
	var out []float64
	for _, e := range sch.Events {
		if e.Kind != schema.Event {
			continue
		}
		out = sumOrExtend(out, h.intervalRates(schema.ClassCPU, e.Name))
	}
	return out
}

// sumOrExtend element-wise adds src into dst, growing dst as needed.
func sumOrExtend(dst, src []float64) []float64 {
	for i, v := range src {
		if i < len(dst) {
			dst[i] += v
		} else {
			dst = append(dst, v)
		}
	}
	return dst
}

// processExtremes scans the host's ps series for the largest VmHWM and
// thread count seen on any process at any sample.
func (h *hostReducer) processExtremes() (maxHWM, maxThreads uint64) {
	sch := h.reg.Get(schema.ClassPS)
	if sch == nil {
		return 0, 0
	}
	iHWM := sch.Index(schema.EvPSVmHWM)
	iThr := sch.Index(schema.EvPSThreads)
	for _, s := range h.hd.Series[schema.ClassPS] {
		for _, smp := range s.Samples {
			if iHWM >= 0 && smp.Values[iHWM] > maxHWM {
				maxHWM = smp.Values[iHWM]
			}
			if iThr >= 0 && smp.Values[iThr] > maxThreads {
				maxThreads = smp.Values[iThr]
			}
		}
	}
	return maxHWM, maxThreads
}
