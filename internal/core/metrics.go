// Package core implements the paper's primary contribution: the per-job
// metric engine that reduces raw per-host counter series to the Table I
// summary metrics.
//
// Two reduction shapes exist, exactly as §IV-A defines them:
//
//   - Average metrics are Average Rate of Change (ARC): the counter's
//     total delta over the job divided by the job duration, computed per
//     node (summing device instances) and then averaged over nodes.
//   - Maximum metrics take the per-interval delta rate on each node,
//     sum it across nodes, and report the largest interval. They are an
//     approximation to the peak instantaneous rate.
//
// Ratios are formed from already-averaged numerators and denominators
// (§IV-A: "the averages are computed before the ratio is formed"), and
// all counters are decoded rollover-aware against their schema widths.
package core

import (
	"errors"
	"fmt"
	"math"

	"gostats/internal/model"
	"gostats/internal/schema"
)

// ErrInsufficient reports a job without the minimum two samples per node
// the prolog/epilog collections guarantee.
var ErrInsufficient = errors.New("core: fewer than two samples for job")

// Summary holds every metric gostats computes for a job (Table I plus
// the energy extension the new TACC Stats release enables).
type Summary struct {
	// Accounting.
	JobID    string
	Nodes    int
	Duration float64 // seconds between first and last sample

	// Lustre metrics.
	MetaDataRate   float64 // max node-summed metadata reqs/s
	MDCReqs        float64 // avg metadata reqs/s per node
	OSCReqs        float64 // avg object-storage reqs/s per node
	MDCWait        float64 // avg us per metadata op
	OSCWait        float64 // avg us per OSC op
	LLiteOpenClose float64 // avg file opens+closes/s per node
	LnetAveBW      float64 // avg Lustre bytes/s per node
	LnetMaxBW      float64 // max node-summed Lustre bytes/s

	// Network metrics.
	InternodeIBAveBW float64 // avg IB-minus-LNET bytes/s per node (MPI)
	InternodeIBMaxBW float64 // max node-summed IB-minus-LNET bytes/s
	PacketSize       float64 // avg bytes per IB packet
	PacketRate       float64 // avg IB packets/s per node
	GigEBW           float64 // avg Ethernet bytes/s per node

	// Processor metrics.
	LoadAll     float64 // avg retired loads/s per node
	LoadL1Hits  float64 // avg L1-hit loads/s per node
	LoadL2Hits  float64 // avg L2-hit loads/s per node
	LoadLLCHits float64 // avg LLC-hit loads/s per node
	CPI         float64 // cycles per instruction
	CPLD        float64 // cycles per L1D load
	Flops       float64 // avg flops/s per node (scalar + width*vector)
	VecPercent  float64 // vector FP instructions / all FP instructions
	MemBW       float64 // avg memory controller bytes/s per node

	// Energy metrics (RAPL).
	PkgWatts  float64 // avg package power per node, W
	CoreWatts float64 // avg core-plane power per node, W
	DRAMWatts float64 // avg DRAM-plane power per node, W

	// OS metrics.
	MemUsage    float64 // max node-summed resident bytes
	CPUUsage    float64 // avg fraction of cpu time in user space
	Idle        float64 // min/max of per-node CPUUsage (1 = balanced)
	Catastrophe float64 // min/max of per-interval node-summed CPUUsage
	MICUsage    float64 // avg Xeon Phi utilization

	// Process metrics (procfs validation data, §III-B).
	MaxVmHWM   uint64 // largest per-process resident high-water mark
	MaxThreads uint64 // largest per-process thread count
}

// VecWidth is the default flops credited per vector FP instruction — the
// 256-bit AVX double-precision width of the Sandy Bridge fleet. Jobs
// collected on other architectures reduce with ComputeWith and the
// width the chip layer detected.
const VecWidth = 4

// Compute reduces a job's assembled series to its Summary using the
// default AVX vector width. reg supplies the schemas the series were
// collected under.
func Compute(jd *model.JobData, reg *schema.Registry) (*Summary, error) {
	return ComputeWith(jd, reg, VecWidth)
}

// ComputeWith is Compute with an explicit per-architecture vector width
// (2 for SSE-era cores, 4 for AVX, 8 for the Phi).
func ComputeWith(jd *model.JobData, reg *schema.Registry, vecWidth int) (*Summary, error) {
	if vecWidth <= 0 {
		vecWidth = VecWidth
	}
	hosts := jd.HostNames()
	if len(hosts) == 0 {
		return nil, fmt.Errorf("%w %s: no hosts", ErrInsufficient, jd.JobID)
	}
	s := &Summary{JobID: jd.JobID, Nodes: len(hosts)}

	var (
		cpuUsages []float64 // per-node CPU_Usage for idle metric
		durSum    float64
	)
	// Per-node average accumulators; index matches the metric fields.
	avg := newMeans()

	// Per-interval node-summed series for Maximum metrics and
	// catastrophe; aligned by interval index.
	maxMDC := newIntervalSum()
	maxLnet := newIntervalSum()
	maxIB := newIntervalSum()
	maxMem := newIntervalSum()
	catUser := newIntervalSum()
	catTotal := newIntervalSum()

	for _, host := range hosts {
		hd := jd.Hosts[host]
		dur := hostDuration(hd)
		if dur <= 0 {
			return nil, fmt.Errorf("%w %s: host %s", ErrInsufficient, jd.JobID, host)
		}
		durSum += dur
		h := newHostReducer(hd, reg)

		// --- Lustre ---
		mdcReqs := h.rate(schema.ClassMDC, schema.EvMDCReqs)
		avg.add("mdcreqs", mdcReqs)
		avg.add("oscreqs", h.rate(schema.ClassOSC, schema.EvOSCReqs))
		avg.add("mdcwait", h.rate(schema.ClassMDC, schema.EvMDCWaitUs))
		avg.add("oscwait", h.rate(schema.ClassOSC, schema.EvOSCWaitUs))
		avg.add("openclose", h.rate(schema.ClassLlite, schema.EvLliteOpen)+
			h.rate(schema.ClassLlite, schema.EvLliteClose))
		lnet := h.rate(schema.ClassLnet, schema.EvLnetRxBytes) +
			h.rate(schema.ClassLnet, schema.EvLnetTxBytes)
		avg.add("lnetbw", lnet)

		// --- Network ---
		ib := h.rate(schema.ClassIB, schema.EvIBRxBytes) +
			h.rate(schema.ClassIB, schema.EvIBTxBytes)
		mpi := ib - lnet
		if mpi < 0 {
			mpi = 0
		}
		avg.add("ibbw", mpi)
		avg.add("ibbytes", ib)
		avg.add("ibpkts", h.rate(schema.ClassIB, schema.EvIBRxPkts)+
			h.rate(schema.ClassIB, schema.EvIBTxPkts))
		avg.add("gige", h.rate(schema.ClassNet, schema.EvNetRxBytes)+
			h.rate(schema.ClassNet, schema.EvNetTxBytes))

		// --- Processor ---
		cycles := h.rate(schema.ClassPMC, schema.EvPMCCycles)
		instrs := h.rate(schema.ClassPMC, schema.EvPMCInstrs)
		scalar := h.rate(schema.ClassPMC, schema.EvPMCFPScalar)
		vector := h.rate(schema.ClassPMC, schema.EvPMCFPVector)
		loads := h.rate(schema.ClassPMC, schema.EvPMCLoadAll)
		avg.add("cycles", cycles)
		avg.add("instrs", instrs)
		avg.add("scalar", scalar)
		avg.add("vector", vector)
		avg.add("loads", loads)
		avg.add("l1", h.rate(schema.ClassPMC, schema.EvPMCLoadL1Hit))
		avg.add("l2", h.rate(schema.ClassPMC, schema.EvPMCLoadL2Hit))
		avg.add("llc", h.rate(schema.ClassPMC, schema.EvPMCLoadLLCHit))
		avg.add("membw", 64*(h.rate(schema.ClassIMC, schema.EvIMCCASReads)+
			h.rate(schema.ClassIMC, schema.EvIMCCASWrites)))

		// --- Energy (mJ/s -> W) ---
		avg.add("pkgw", h.rate(schema.ClassRAPL, schema.EvRAPLPkg)/1000)
		avg.add("corew", h.rate(schema.ClassRAPL, schema.EvRAPLCore)/1000)
		avg.add("dramw", h.rate(schema.ClassRAPL, schema.EvRAPLDRAM)/1000)

		// --- OS ---
		user := h.rate(schema.ClassCPU, schema.EvCPUUser)
		total := h.cpuTotalRate()
		cu := 0.0
		if total > 0 {
			cu = user / total
		}
		cpuUsages = append(cpuUsages, cu)
		avg.add("cpuusage", cu)

		micUser := h.rate(schema.ClassMIC, schema.EvMICUser)
		micAll := micUser + h.rate(schema.ClassMIC, schema.EvMICSys) +
			h.rate(schema.ClassMIC, schema.EvMICIdle)
		mu := 0.0
		if micAll > 0 {
			mu = micUser / micAll
		}
		avg.add("mic", mu)

		// --- Maximum metrics: per-interval node series ---
		maxMDC.addHost(h.intervalRates(schema.ClassMDC, schema.EvMDCReqs))
		maxLnet.addHost(sumSeries(
			h.intervalRates(schema.ClassLnet, schema.EvLnetRxBytes),
			h.intervalRates(schema.ClassLnet, schema.EvLnetTxBytes)))
		ibSeries := sumSeries(
			h.intervalRates(schema.ClassIB, schema.EvIBRxBytes),
			h.intervalRates(schema.ClassIB, schema.EvIBTxBytes))
		lnetSeries := sumSeries(
			h.intervalRates(schema.ClassLnet, schema.EvLnetRxBytes),
			h.intervalRates(schema.ClassLnet, schema.EvLnetTxBytes))
		maxIB.addHost(subSeriesClamped(ibSeries, lnetSeries))
		maxMem.addHost(h.gaugeSeries(schema.ClassMem, schema.EvMemUsed))

		userSeries := h.intervalRates(schema.ClassCPU, schema.EvCPUUser)
		catUser.addHost(userSeries)
		catTotal.addHost(h.cpuTotalIntervalRates())

		// --- Process table extremes ---
		hwm, threads := h.processExtremes()
		if hwm > s.MaxVmHWM {
			s.MaxVmHWM = hwm
		}
		if threads > s.MaxThreads {
			s.MaxThreads = threads
		}
	}

	n := float64(len(hosts))
	s.Duration = durSum / n

	// Average metrics.
	s.MDCReqs = avg.mean("mdcreqs")
	s.OSCReqs = avg.mean("oscreqs")
	s.MDCWait = ratio(avg.mean("mdcwait"), avg.mean("mdcreqs"))
	s.OSCWait = ratio(avg.mean("oscwait"), avg.mean("oscreqs"))
	s.LLiteOpenClose = avg.mean("openclose")
	s.LnetAveBW = avg.mean("lnetbw")
	s.InternodeIBAveBW = avg.mean("ibbw")
	s.PacketSize = ratio(avg.mean("ibbytes"), avg.mean("ibpkts"))
	s.PacketRate = avg.mean("ibpkts")
	s.GigEBW = avg.mean("gige")
	s.LoadAll = avg.mean("loads")
	s.LoadL1Hits = avg.mean("l1")
	s.LoadL2Hits = avg.mean("l2")
	s.LoadLLCHits = avg.mean("llc")
	s.CPI = ratio(avg.mean("cycles"), avg.mean("instrs"))
	s.CPLD = ratio(avg.mean("cycles"), avg.mean("loads"))
	s.Flops = avg.mean("scalar") + float64(vecWidth)*avg.mean("vector")
	s.VecPercent = ratio(avg.mean("vector"), avg.mean("scalar")+avg.mean("vector"))
	s.MemBW = avg.mean("membw")
	s.PkgWatts = avg.mean("pkgw")
	s.CoreWatts = avg.mean("corew")
	s.DRAMWatts = avg.mean("dramw")
	s.CPUUsage = avg.mean("cpuusage")
	s.MICUsage = avg.mean("mic")

	// Maximum metrics.
	s.MetaDataRate = maxMDC.max()
	s.LnetMaxBW = maxLnet.max()
	s.InternodeIBMaxBW = maxIB.max()
	s.MemUsage = maxMem.max()

	// Imbalance metrics.
	s.Idle = minOverMax(cpuUsages)
	s.Catastrophe = catastrophe(catUser.sums, catTotal.sums)

	return s, nil
}

// ratio forms a/b, 0 when b is 0.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// minOverMax returns min(xs)/max(xs) in [0,1]; 0 for empty or all-zero.
func minOverMax(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return ratio(lo, hi)
}

// catastrophe computes the time-imbalance metric: per interval, the
// node-summed user rate over the node-summed total rate; then min/max of
// that usage across intervals.
func catastrophe(user, total []float64) float64 {
	n := len(user)
	if len(total) < n {
		n = len(total)
	}
	var usages []float64
	for i := 0; i < n; i++ {
		if total[i] > 0 {
			usages = append(usages, user[i]/total[i])
		}
	}
	return minOverMax(usages)
}

// means is a tiny named-accumulator map used by Compute.
type means struct {
	sum map[string]float64
	n   map[string]int
}

func newMeans() *means {
	return &means{sum: map[string]float64{}, n: map[string]int{}}
}

// add folds a per-node value into the named mean. NaN values (from
// missing devices) are skipped so one instrument gap doesn't poison the
// job.
func (m *means) add(key string, v float64) {
	if math.IsNaN(v) {
		return
	}
	m.sum[key] += v
	m.n[key]++
}

func (m *means) mean(key string) float64 {
	if m.n[key] == 0 {
		return 0
	}
	return m.sum[key] / float64(m.n[key])
}

// intervalSum accumulates node-summed per-interval series aligned by
// interval index.
type intervalSum struct {
	sums []float64
}

func newIntervalSum() *intervalSum { return &intervalSum{} }

func (is *intervalSum) addHost(rates []float64) {
	for i, r := range rates {
		if i < len(is.sums) {
			is.sums[i] += r
		} else {
			is.sums = append(is.sums, r)
		}
	}
}

func (is *intervalSum) max() float64 {
	m := 0.0
	for _, v := range is.sums {
		if v > m {
			m = v
		}
	}
	return m
}

// sumSeries adds two per-interval series element-wise (shorter length
// wins).
func sumSeries(a, b []float64) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] + b[i]
	}
	return out
}

// subSeriesClamped subtracts b from a element-wise, clamping at zero.
func subSeriesClamped(a, b []float64) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] - b[i]
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}
