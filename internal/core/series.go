package core

import (
	"gostats/internal/model"
	"gostats/internal/schema"
)

// NodeSeries is one node's line on a job detail plot.
type NodeSeries struct {
	Host   string
	Values []float64 // one value per sampling interval
}

// Panel is one plot of the job detail page: a named quantity with one
// line per node, all aligned to Times.
type Panel struct {
	Name  string
	Unit  string
	Times []float64 // interval end times (simulated epoch seconds)
	Nodes []NodeSeries
}

// JobSeries is the full set of Fig 5 panels for one job: the six
// quantities the paper plots per node over time.
type JobSeries struct {
	JobID  string
	Panels []Panel
}

// TimeSeries derives the Fig 5 panels from assembled job data:
// Gigaflops, memory bandwidth (GB/s), memory usage (GB), Lustre
// filesystem bandwidth (MB/s), internode Infiniband traffic (MB/s), and
// CPU user fraction — per node, per sampling interval.
func TimeSeries(jd *model.JobData, reg *schema.Registry) (*JobSeries, error) {
	hosts := jd.HostNames()
	if len(hosts) == 0 {
		return nil, ErrInsufficient
	}
	js := &JobSeries{JobID: jd.JobID}
	panels := []struct {
		name, unit string
		f          func(h *hostReducer) []float64
	}{
		{"Gigaflops", "GF/s", func(h *hostReducer) []float64 {
			scalar := h.intervalRates(schema.ClassPMC, schema.EvPMCFPScalar)
			vector := h.intervalRates(schema.ClassPMC, schema.EvPMCFPVector)
			out := make([]float64, min(len(scalar), len(vector)))
			for i := range out {
				out[i] = (scalar[i] + VecWidth*vector[i]) / 1e9
			}
			return out
		}},
		{"Memory Bandwidth", "GB/s", func(h *hostReducer) []float64 {
			rd := h.intervalRates(schema.ClassIMC, schema.EvIMCCASReads)
			wr := h.intervalRates(schema.ClassIMC, schema.EvIMCCASWrites)
			out := make([]float64, min(len(rd), len(wr)))
			for i := range out {
				out[i] = 64 * (rd[i] + wr[i]) / 1e9
			}
			return out
		}},
		{"Memory Usage", "GB", func(h *hostReducer) []float64 {
			g := h.gaugeSeries(schema.ClassMem, schema.EvMemUsed)
			out := make([]float64, 0, len(g))
			// Gauge series has one entry per sample; panels are
			// per-interval, so drop the first sample to align.
			for i, v := range g {
				if i == 0 {
					continue
				}
				out = append(out, v/(1<<30))
			}
			return out
		}},
		{"Lustre Bandwidth", "MB/s", func(h *hostReducer) []float64 {
			rx := h.intervalRates(schema.ClassLnet, schema.EvLnetRxBytes)
			tx := h.intervalRates(schema.ClassLnet, schema.EvLnetTxBytes)
			out := make([]float64, min(len(rx), len(tx)))
			for i := range out {
				out[i] = (rx[i] + tx[i]) / 1e6
			}
			return out
		}},
		{"Internode IB (MPI)", "MB/s", func(h *hostReducer) []float64 {
			ib := sumSeries(
				h.intervalRates(schema.ClassIB, schema.EvIBRxBytes),
				h.intervalRates(schema.ClassIB, schema.EvIBTxBytes))
			lnet := sumSeries(
				h.intervalRates(schema.ClassLnet, schema.EvLnetRxBytes),
				h.intervalRates(schema.ClassLnet, schema.EvLnetTxBytes))
			mpi := subSeriesClamped(ib, lnet)
			for i := range mpi {
				mpi[i] /= 1e6
			}
			return mpi
		}},
		{"CPU User Fraction", "", func(h *hostReducer) []float64 {
			user := h.intervalRates(schema.ClassCPU, schema.EvCPUUser)
			total := h.cpuTotalIntervalRates()
			out := make([]float64, min(len(user), len(total)))
			for i := range out {
				if total[i] > 0 {
					out[i] = user[i] / total[i]
				}
			}
			return out
		}},
	}

	times := sampleTimes(jd.Hosts[hosts[0]])
	for _, p := range panels {
		panel := Panel{Name: p.name, Unit: p.unit, Times: times}
		for _, host := range hosts {
			h := newHostReducer(jd.Hosts[host], reg)
			panel.Nodes = append(panel.Nodes, NodeSeries{Host: host, Values: p.f(h)})
		}
		js.Panels = append(js.Panels, panel)
	}
	return js, nil
}

// sampleTimes extracts the host's interval end times from its cpu series.
func sampleTimes(hd *model.HostData) []float64 {
	byInst := hd.Series[schema.ClassCPU]
	for _, s := range byInst {
		out := make([]float64, 0, len(s.Samples))
		for i, smp := range s.Samples {
			if i == 0 {
				continue
			}
			out = append(out, smp.Time)
		}
		return out
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
