package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gostats/internal/model"
	"gostats/internal/schema"
)

// randomJob builds a JobData with hosts of random (monotone) counter
// series, exercising the metric engine over arbitrary-but-valid inputs.
func randomJob(rng *rand.Rand, hosts, samples int) *model.JobData {
	jd := model.NewJobData("prop")
	for h := 0; h < hosts; h++ {
		host := string(rune('a' + h))
		hd := jd.Host(host)
		// cpu: user/system/idle jiffy streams.
		var user, sys, idle uint64
		userRate := uint64(rng.Intn(50000) + 1)
		sysRate := uint64(rng.Intn(5000))
		idleRate := uint64(rng.Intn(50000))
		// mdc: request stream.
		var reqs, wait uint64
		reqRate := uint64(rng.Intn(100000))
		for i := 0; i < samples; i++ {
			t := float64(i) * 600
			hd.Append(t, model.Record{Class: schema.ClassCPU, Instance: "0",
				Values: []uint64{user, 0, sys, idle, 0, 0, 0}})
			hd.Append(t, model.Record{Class: schema.ClassMDC, Instance: "m0",
				Values: []uint64{reqs, wait}})
			user += userRate
			sys += sysRate
			idle += idleRate
			reqs += reqRate
			wait += reqRate * 100
		}
	}
	return jd
}

// Property: metric bounds hold for any valid input — usage fractions and
// imbalance ratios live in [0,1], rates are non-negative.
func TestQuickMetricBounds(t *testing.T) {
	reg := schema.DefaultRegistry()
	f := func(seed int64, hostsRaw, samplesRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		hosts := int(hostsRaw)%6 + 1
		samples := int(samplesRaw)%10 + 2
		s, err := Compute(randomJob(rng, hosts, samples), reg)
		if err != nil {
			return false
		}
		if s.CPUUsage < 0 || s.CPUUsage > 1 {
			return false
		}
		if s.Idle < 0 || s.Idle > 1 {
			return false
		}
		if s.Catastrophe < 0 || s.Catastrophe > 1 {
			return false
		}
		if s.MDCReqs < 0 || s.MetaDataRate < 0 || s.MDCWait < 0 {
			return false
		}
		// Maximum >= average for the same underlying counter: the peak
		// node-summed interval rate cannot be below nodes*average... but
		// it IS at least the per-node average when every host has the
		// same sample count, so check the weaker invariant:
		return s.MetaDataRate >= s.MDCReqs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: host order does not matter — Compute is a set reduction.
func TestQuickHostPermutationInvariance(t *testing.T) {
	reg := schema.DefaultRegistry()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		jd := randomJob(rng, 4, 5)
		s1, err := Compute(jd, reg)
		if err != nil {
			return false
		}
		// Rebuild with hosts inserted in reverse order.
		rev := model.NewJobData("prop")
		names := jd.HostNames()
		for i := len(names) - 1; i >= 0; i-- {
			rev.Hosts[names[i]] = jd.Hosts[names[i]]
		}
		s2, err := Compute(rev, reg)
		if err != nil {
			return false
		}
		return s1.CPUUsage == s2.CPUUsage && s1.MDCReqs == s2.MDCReqs &&
			s1.MetaDataRate == s2.MetaDataRate && s1.Idle == s2.Idle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: doubling every counter delta doubles ARC rates (linearity)
// and leaves fraction metrics unchanged.
func TestQuickRateLinearity(t *testing.T) {
	reg := schema.DefaultRegistry()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		jd := randomJob(rng, 2, 4)
		doubled := model.NewJobData("prop")
		for host, hd := range jd.Hosts {
			dh := doubled.Host(host)
			for _, byInst := range hd.Series {
				for _, ser := range byInst {
					for _, smp := range ser.Samples {
						vals := make([]uint64, len(smp.Values))
						for i, v := range smp.Values {
							vals[i] = 2 * v
						}
						dh.Append(smp.Time, model.Record{
							Class: ser.Class, Instance: ser.Instance, Values: vals})
					}
				}
			}
		}
		s1, err := Compute(jd, reg)
		if err != nil {
			return false
		}
		s2, err := Compute(doubled, reg)
		if err != nil {
			return false
		}
		if !close(s2.MDCReqs, 2*s1.MDCReqs, 1e-6*(1+s1.MDCReqs)) {
			return false
		}
		if !close(s2.MetaDataRate, 2*s1.MetaDataRate, 1e-6*(1+s1.MetaDataRate)) {
			return false
		}
		// Fractions are scale-free.
		return close(s2.CPUUsage, s1.CPUUsage, 1e-9) && close(s2.Idle, s1.Idle, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: adding a completely idle host can only lower (or keep) the
// idle balance metric and the per-node average rates.
func TestQuickIdleHostMonotonicity(t *testing.T) {
	reg := schema.DefaultRegistry()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		jd := randomJob(rng, 3, 4)
		s1, err := Compute(jd, reg)
		if err != nil {
			return false
		}
		// Clone plus an idle host (idle jiffies only).
		withIdle := model.NewJobData("prop")
		for host, hd := range jd.Hosts {
			withIdle.Hosts[host] = hd
		}
		ih := withIdle.Host("zz-idle")
		for i := 0; i < 4; i++ {
			ih.Append(float64(i)*600, model.Record{Class: schema.ClassCPU, Instance: "0",
				Values: []uint64{0, 0, 0, uint64(i) * 60000, 0, 0, 0}})
		}
		s2, err := Compute(withIdle, reg)
		if err != nil {
			return false
		}
		if s2.Idle > s1.Idle+1e-12 {
			return false
		}
		return s2.MDCReqs <= s1.MDCReqs+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
