// Per-client token-bucket rate limiting for the versioned query API.
// Each client — identified by its X-Client-ID header, falling back to
// the peer address — gets a bucket refilled at a steady rate with a
// bounded burst. A refused request is answered 429 with a Retry-After
// hint; the limiter sits outside the response cache, so rejected
// requests never render, never populate the cache, and cannot evict
// warm entries.
package portal

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// limiterMaxClients bounds the per-client bucket map. At the cap, idle
// (fully refilled) buckets are swept first; if every client is active,
// arbitrary buckets are dropped — a dropped active client restarts with
// a fresh bucket, trading one extra burst for bounded memory.
const limiterMaxClients = 8192

// Limiter is a per-client token bucket: each client may burst up to
// burst requests and sustain rate requests per second thereafter.
type Limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	now   func() time.Time

	mu      sync.Mutex
	clients map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter returns a limiter allowing ratePerSec sustained requests
// per second per client with bursts of up to burst (minimum 1 each).
func NewLimiter(ratePerSec, burst float64) *Limiter {
	if ratePerSec < 1 {
		ratePerSec = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &Limiter{
		rate:    ratePerSec,
		burst:   burst,
		now:     time.Now,
		clients: make(map[string]*tokenBucket),
	}
}

// refillLocked advances a bucket to now and returns its token count.
func (l *Limiter) refillLocked(b *tokenBucket, now time.Time) float64 {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
		b.last = now
	}
	return b.tokens
}

// allow takes one token from key's bucket. When the bucket is empty it
// reports false plus the seconds until the next token accrues.
func (l *Limiter) allow(key string) (bool, float64) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.clients[key]
	if !ok {
		if len(l.clients) >= limiterMaxClients {
			l.sweepLocked(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.clients[key] = b
	}
	if l.refillLocked(b, now) >= 1 {
		b.tokens--
		return true, 0
	}
	return false, (1 - b.tokens) / l.rate
}

// sweepLocked makes room in the client map: idle buckets first, then
// arbitrary ones if every client is mid-burst.
func (l *Limiter) sweepLocked(now time.Time) {
	for k, b := range l.clients {
		if l.refillLocked(b, now) >= l.burst {
			delete(l.clients, k)
		}
	}
	for k := range l.clients {
		if len(l.clients) < limiterMaxClients {
			break
		}
		delete(l.clients, k)
	}
}

// clientKey identifies the requesting client: the X-Client-ID header
// when present (simulated fleets and API consumers set it), else the
// peer host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// limit wraps a handler with the per-client limiter. It must wrap
// OUTSIDE cacheable: a 429 is written straight to the client, so
// rejected requests never touch the response cache. Nil limiter means
// unlimited.
func (s *Server) limit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		l := s.Limiter
		if l == nil {
			h(w, r)
			return
		}
		if ok, retry := l.allow(clientKey(r)); !ok {
			s.registry().Counter("gostats_portal_ratelimited_total",
				"Portal requests rejected by the per-client rate limiter.").Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(math.Max(retry, 1)))))
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		h(w, r)
	}
}
