package portal

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"gostats/internal/chip"
	"gostats/internal/core"
	"gostats/internal/reldb"
	"gostats/internal/telemetry"
)

// buildCachedPortal makes a portal over a synthetic table with its own
// telemetry registry so cache counters can be asserted.
func buildCachedPortal(t *testing.T, jobs int) (*Server, *reldb.DB, *telemetry.Registry, string) {
	t.Helper()
	db := reldb.New()
	for i := 0; i < jobs; i++ {
		db.Insert(&reldb.JobRow{
			JobID: fmt.Sprint(i), User: fmt.Sprintf("u%02d", i%7), Exe: "wrf.exe",
			Queue: "normal", Status: "COMPLETED", Nodes: 2, Wayness: 16,
			StartTime: float64(i * 100), EndTime: float64(i*100 + 600),
			Metrics: core.Summary{CPUUsage: 0.5, MetaDataRate: float64(i)},
		})
	}
	s := NewServer(db, chip.StampedeNode().Registry(), nil)
	s.Metrics = telemetry.NewRegistry()
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, db, s.Metrics, srv.URL
}

func counterValue(reg *telemetry.Registry, name, route string) uint64 {
	return reg.Counter(name, "", "route", route).Value()
}

func TestCacheHitOnRepeat(t *testing.T) {
	s, _, reg, url := buildCachedPortal(t, 20)
	q := url + "/jobs?field1=runtime&op1=gte&val1=100"
	c1, b1 := get(t, q)
	c2, b2 := get(t, q)
	if c1 != 200 || c2 != 200 {
		t.Fatalf("codes = %d/%d", c1, c2)
	}
	if b1 != b2 {
		t.Error("cached body differs from rendered body")
	}
	if hits := counterValue(reg, "gostats_portal_cache_hits_total", "/jobs"); hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
	if misses := counterValue(reg, "gostats_portal_cache_misses_total", "/jobs"); misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
	if s.Cache.Len() == 0 {
		t.Error("cache empty after miss+render")
	}
}

func TestCacheParamOrderCanonical(t *testing.T) {
	_, _, reg, url := buildCachedPortal(t, 10)
	get(t, url+"/jobs?exe=wrf.exe&user=u01")
	get(t, url+"/jobs?user=u01&exe=wrf.exe") // same query, reordered
	if hits := counterValue(reg, "gostats_portal_cache_hits_total", "/jobs"); hits != 1 {
		t.Errorf("hits = %d, want 1 (param order should not matter)", hits)
	}
}

func TestCacheInvalidatedByInsert(t *testing.T) {
	_, db, reg, url := buildCachedPortal(t, 10)
	q := url + "/jobs?status=COMPLETED"
	_, before := get(t, q)
	db.Insert(&reldb.JobRow{JobID: "new", User: "u99", Exe: "new.exe",
		Queue: "normal", Status: "COMPLETED", Nodes: 1, EndTime: 600})
	_, after := get(t, q)
	if before == after {
		t.Error("insert did not invalidate the cached page")
	}
	if misses := counterValue(reg, "gostats_portal_cache_misses_total", "/jobs"); misses != 2 {
		t.Errorf("misses = %d, want 2", misses)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	_, _, _, url := buildCachedPortal(t, 5)
	bad := url + "/jobs?field1=runtime&op1=gte&val1=notanumber"
	c1, _ := get(t, bad)
	c2, _ := get(t, bad)
	if c1 != http.StatusBadRequest || c2 != http.StatusBadRequest {
		t.Fatalf("codes = %d/%d, want 400", c1, c2)
	}
}

func TestCacheDisabled(t *testing.T) {
	db := reldb.New()
	db.Insert(&reldb.JobRow{JobID: "1", User: "u", Exe: "x", Status: "COMPLETED", Nodes: 1, EndTime: 600})
	s := NewServer(db, chip.StampedeNode().Registry(), nil)
	s.Cache = nil
	s.Metrics = telemetry.NewRegistry()
	srv := httptest.NewServer(s)
	defer srv.Close()
	for i := 0; i < 2; i++ {
		if code, _ := get(t, srv.URL+"/jobs"); code != 200 {
			t.Fatalf("code = %d", code)
		}
	}
	if hits := counterValue(s.Metrics, "gostats_portal_cache_hits_total", "/jobs"); hits != 0 {
		t.Errorf("hits = %d with cache disabled", hits)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	for i := 0; i < 5; i++ {
		c.put(fmt.Sprintf("k%d", i), &cacheEntry{gen: 1, body: []byte("x")})
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	if _, ok := c.get("k0", 1); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := c.get("k4", 1); !ok {
		t.Error("newest entry evicted")
	}
	// Stale generation drops the entry.
	if _, ok := c.get("k4", 2); ok {
		t.Error("stale entry served")
	}
	if _, ok := c.get("k4", 1); ok {
		t.Error("stale entry not dropped")
	}
}

// TestConcurrentPortalReadersWriters hammers the cached routes from many
// clients while rows keep arriving — the -race gate for the read path.
func TestConcurrentPortalReadersWriters(t *testing.T) {
	_, db, _, url := buildCachedPortal(t, 50)
	paths := []string{
		"/jobs?status=COMPLETED",
		"/jobs?field1=metadatarate&op1=gte&val1=10",
		"/api/jobs?exe=wrf.exe",
		"/dates",
		"/energy",
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.Insert(&reldb.JobRow{
					JobID: fmt.Sprintf("w%d-%d", w, i), User: "uw", Exe: "wrf.exe",
					Queue: "normal", Status: "COMPLETED", Nodes: 1,
					EndTime: float64(i * 60),
					Metrics: core.Summary{MetaDataRate: float64(i)},
				})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				resp, err := http.Get(url + paths[(r+i)%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != 200 {
					t.Errorf("status %d for %s", resp.StatusCode, paths[(r+i)%len(paths)])
				}
				resp.Body.Close()
			}
		}(r)
	}
	wg.Wait()
}
