package portal

import (
	"fmt"
	"math"
	"strings"

	"gostats/internal/core"
	"gostats/internal/stats"
)

// Plot geometry shared by the SVG renderers.
const (
	plotW, plotH     = 640, 180
	marginL, marginB = 70, 24
	marginT, marginR = 18, 12
)

// palette cycles line colors per node, matching the multi-line-per-plot
// style of the paper's Fig 5.
var palette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// fmtTick renders an axis tick value compactly.
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// PanelSVG renders one Fig 5 panel: one line per node over time.
func PanelSVG(p core.Panel) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		plotW, plotH, plotW, plotH)
	title := p.Name
	if p.Unit != "" {
		title += " (" + p.Unit + ")"
	}
	fmt.Fprintf(&b, `<text x="%d" y="13" font-size="12" font-family="sans-serif">%s</text>`, marginL, title)

	innerW := plotW - marginL - marginR
	innerH := plotH - marginT - marginB

	// Data ranges.
	tMin, tMax := math.Inf(1), math.Inf(-1)
	vMax := 0.0
	for _, t := range p.Times {
		tMin = math.Min(tMin, t)
		tMax = math.Max(tMax, t)
	}
	for _, ns := range p.Nodes {
		for _, v := range ns.Values {
			vMax = math.Max(vMax, v)
		}
	}
	if len(p.Times) == 0 || math.IsInf(tMin, 1) {
		b.WriteString(`<text x="300" y="90" font-size="12">no data</text></svg>`)
		return b.String()
	}
	if vMax == 0 {
		vMax = 1
	}
	if tMax == tMin {
		tMax = tMin + 1
	}
	x := func(t float64) float64 {
		return float64(marginL) + (t-tMin)/(tMax-tMin)*float64(innerW)
	}
	y := func(v float64) float64 {
		return float64(marginT) + (1-v/vMax)*float64(innerH)
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`,
		marginL, plotH-marginB, plotW-marginR, plotH-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`,
		marginL, marginT, marginL, plotH-marginB)
	// Y ticks at 0, 1/2, max.
	for _, f := range []float64{0, 0.5, 1} {
		v := vMax * f
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end" font-family="sans-serif">%s</text>`,
			marginL-4, y(v)+3, fmtTick(v))
	}
	// X ticks at start/end (minutes since start).
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" font-family="sans-serif">0</text>`,
		marginL, plotH-8)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end" font-family="sans-serif">%s min</text>`,
		plotW-marginR, plotH-8, fmtTick((tMax-tMin)/60))

	// One polyline per node.
	for i, ns := range p.Nodes {
		color := palette[i%len(palette)]
		var pts []string
		for k, v := range ns.Values {
			if k >= len(p.Times) {
				break
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(p.Times[k]), y(v)))
		}
		if len(pts) == 1 {
			// A single point renders as a dot.
			fmt.Fprintf(&b, `<circle cx="%s" r="2.5" fill="%s"/>`,
				strings.Replace(pts[0], ",", `" cy="`, 1), color)
			continue
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.2" points="%s"/>`,
			color, strings.Join(pts, " "))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// HistogramSVG renders one Fig 4 histogram as an SVG bar chart.
func HistogramSVG(h *stats.Histogram, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		plotW/2, plotH, plotW/2, plotH)
	fmt.Fprintf(&b, `<text x="%d" y="13" font-size="12" font-family="sans-serif">%s (n=%d)</text>`,
		marginL, title, h.Total())
	innerW := plotW/2 - marginL - marginR
	innerH := plotH - marginT - marginB
	maxc := h.MaxCount()
	if maxc == 0 {
		maxc = 1
	}
	n := len(h.Counts)
	barW := float64(innerW) / float64(n)
	for i, c := range h.Counts {
		barH := float64(c) / float64(maxc) * float64(innerH)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#1f77b4"/>`,
			float64(marginL)+float64(i)*barW, float64(marginT)+float64(innerH)-barH,
			math.Max(barW-1, 1), barH)
	}
	// Axis labels: lo, hi, max count.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" font-family="sans-serif">%s</text>`,
		marginL, plotH-8, fmtTick(h.Lo))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end" font-family="sans-serif">%s</text>`,
		plotW/2-marginR, plotH-8, fmtTick(h.Hi))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end" font-family="sans-serif">%d</text>`,
		marginL-4, marginT+6, maxc)
	b.WriteString(`</svg>`)
	return b.String()
}
