// The versioned query API: /api/v1 endpoints for programmatic
// consumers. Job routes page and rank the reldb table; metric routes
// run time-range, top-N, and current-value queries against the tsdb —
// including its indexed cold-read path when a durable store is
// attached. Every route sits behind the generation-stamped response
// cache (stamped by whichever store backs it) and the per-client rate
// limiter.
package portal

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"gostats/internal/reldb"
	"gostats/internal/tsdb"
)

// tsdbGen is the cache generation source for metric routes; without an
// attached metric store the generation is constant, which is correct —
// nothing can change.
func (s *Server) tsdbGen() uint64 {
	if s.TSDB == nil {
		return 0
	}
	return s.TSDB.Generation()
}

// writeJSON renders a JSON response.
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// intParam reads a non-negative integer query parameter with a default.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("portal: bad %s %q", name, v)
	}
	return n, nil
}

// v1JobRow is the job shape served by the v1 job routes.
type v1JobRow struct {
	JobID    string  `json:"jobid"`
	User     string  `json:"user"`
	Exe      string  `json:"exe"`
	Nodes    int     `json:"nodes"`
	RunTime  float64 `json:"runtime"`
	CPUUsage float64 `json:"cpu_usage"`
}

func v1Row(r *reldb.JobRow) v1JobRow {
	return v1JobRow{r.JobID, r.User, r.Exe, r.Nodes, r.RunTime(), r.Metrics.CPUUsage}
}

// handleV1Jobs is the paginated job list: the /api/jobs filters plus
// order_by (numeric field, "-" prefix for descending), offset, and
// limit (default 100, capped at 1000). The envelope carries the total
// match count so clients can page without a separate count query.
func (s *Server) handleV1Jobs(w http.ResponseWriter, r *http.Request) {
	filters, err := parseFilters(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	offset, err := intParam(r, "offset", 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	limit, err := intParam(r, "limit", 100)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if limit == 0 || limit > 1000 {
		limit = 1000
	}
	all, err := s.DB.Query(filters...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	opts := reldb.QueryOpts{OrderBy: r.URL.Query().Get("order_by"), Offset: offset, Limit: limit}
	rows, err := s.DB.QueryOrdered(opts, filters...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	jobs := make([]v1JobRow, len(rows))
	for i, row := range rows {
		jobs[i] = v1Row(row)
	}
	writeJSON(w, struct {
		Total  int        `json:"total"`
		Offset int        `json:"offset"`
		Limit  int        `json:"limit"`
		Jobs   []v1JobRow `json:"jobs"`
	}{len(all), offset, limit, jobs})
}

// handleV1TopJobs ranks jobs by a numeric field with the bounded-heap
// plan: field (required), n (default 10, capped at 100), order=top or
// bottom, plus the usual filters. Each entry carries the ranked value.
func (s *Server) handleV1TopJobs(w http.ResponseWriter, r *http.Request) {
	field := r.URL.Query().Get("field")
	if field == "" {
		http.Error(w, "portal: field parameter required", http.StatusBadRequest)
		return
	}
	n, bottom, err := rankParams(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	filters, err := parseFilters(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rows, err := s.DB.TopN(field, n, bottom, filters...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	type ranked struct {
		v1JobRow
		Value float64 `json:"value"`
	}
	out := make([]ranked, len(rows))
	for i, row := range rows {
		v, _ := reldb.NumField(row, field)
		out[i] = ranked{v1Row(row), v}
	}
	writeJSON(w, out)
}

// rankParams reads the shared ranking parameters n and order.
func rankParams(r *http.Request) (n int, bottom bool, err error) {
	n, err = intParam(r, "n", 10)
	if err != nil {
		return 0, false, err
	}
	if n == 0 || n > 100 {
		n = 100
	}
	switch ord := r.URL.Query().Get("order"); ord {
	case "", "top":
	case "bottom":
		bottom = true
	default:
		return 0, false, fmt.Errorf("portal: bad order %q (want top or bottom)", ord)
	}
	return n, bottom, nil
}

// parseMetricQuery builds a tsdb query from request parameters: tag
// filters host/devtype/device/event, start/end seconds, agg
// (sum/avg/max/min), step (downsample bucket seconds), and group_by (a
// comma-separated tag key list).
func parseMetricQuery(r *http.Request) (tsdb.Query, error) {
	v := r.URL.Query()
	q := tsdb.Query{
		Host:    v.Get("host"),
		DevType: v.Get("devtype"),
		Device:  v.Get("device"),
		Event:   v.Get("event"),
	}
	var err error
	if s := v.Get("start"); s != "" {
		if q.Start, err = strconv.ParseFloat(s, 64); err != nil {
			return q, fmt.Errorf("portal: bad start %q", s)
		}
	}
	if s := v.Get("end"); s != "" {
		if q.End, err = strconv.ParseFloat(s, 64); err != nil {
			return q, fmt.Errorf("portal: bad end %q", s)
		}
	}
	if s := v.Get("step"); s != "" {
		if q.Downsample, err = strconv.ParseFloat(s, 64); err != nil || q.Downsample < 0 {
			return q, fmt.Errorf("portal: bad step %q", s)
		}
	}
	switch agg := v.Get("agg"); agg {
	case "", "sum":
		q.Aggregate = tsdb.Sum
	case "avg":
		q.Aggregate = tsdb.Avg
	case "max":
		q.Aggregate = tsdb.Max
	case "min":
		q.Aggregate = tsdb.Min
	default:
		return q, fmt.Errorf("portal: bad agg %q", agg)
	}
	if g := v.Get("group_by"); g != "" {
		q.GroupBy = strings.Split(g, ",")
	}
	return q, nil
}

// requireTSDB reports whether a metric store is attached, answering 503
// when not.
func (s *Server) requireTSDB(w http.ResponseWriter) bool {
	if s.TSDB == nil {
		http.Error(w, "portal: no metric store attached", http.StatusServiceUnavailable)
		return false
	}
	return true
}

// handleV1Metrics runs a time-range metric query: grouped, aggregated,
// optionally downsampled series, served from RAM and — for ranges past
// the hot boundary — the indexed cold-read path.
func (s *Server) handleV1Metrics(w http.ResponseWriter, r *http.Request) {
	if !s.requireTSDB(w) {
		return
	}
	q, err := parseMetricQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	results, err := s.TSDB.Do(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	type series struct {
		Group  map[string]string `json:"group,omitempty"`
		Points [][2]float64      `json:"points"`
	}
	out := make([]series, len(results))
	for i, res := range results {
		pts := make([][2]float64, len(res.Points))
		for j, p := range res.Points {
			pts[j] = [2]float64{p.Time, p.Value}
		}
		out[i] = series{res.Group, pts}
	}
	writeJSON(w, out)
}

// handleV1TopHosts ranks metric groups (hosts by default) by their
// aggregate value over the query range with the bounded-heap plan.
func (s *Server) handleV1TopHosts(w http.ResponseWriter, r *http.Request) {
	if !s.requireTSDB(w) {
		return
	}
	q, err := parseMetricQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(q.GroupBy) == 0 {
		q.GroupBy = []string{"host"}
	}
	n, bottom, err := rankParams(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ranked, err := s.TSDB.TopN(q, n, bottom)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	type entry struct {
		Group map[string]string `json:"group"`
		Value float64           `json:"value"`
	}
	out := make([]entry, len(ranked))
	for i, rk := range ranked {
		out[i] = entry{rk.Group, rk.Value}
	}
	writeJSON(w, out)
}

// handleV1Gauges serves current values: the newest point of every
// series matching the tag filters, straight from the RAM hot set.
func (s *Server) handleV1Gauges(w http.ResponseWriter, r *http.Request) {
	if !s.requireTSDB(w) {
		return
	}
	q, err := parseMetricQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	type gauge struct {
		Host    string  `json:"host"`
		DevType string  `json:"devtype"`
		Device  string  `json:"device"`
		Event   string  `json:"event"`
		Time    float64 `json:"time"`
		Value   float64 `json:"value"`
	}
	gs := s.TSDB.Latest(q)
	out := make([]gauge, len(gs))
	for i, g := range gs {
		out[i] = gauge{g.Tags.Host, g.Tags.DevType, g.Tags.Device, g.Tags.Event, g.Time, g.Value}
	}
	writeJSON(w, out)
}
