// Package portal is gostats' web front end — the Django application of
// §IV-B rebuilt on net/http. It serves the Fig 3 search page (metadata
// plus up to three metric Search fields with comparison suffixes), job
// lists with the Fig 4 histogram quartet and the flagged-jobs sublist,
// and per-job detail pages with the Fig 5 per-node plots, the metric
// pass/fail report, and procfs process data.
package portal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"gostats/internal/analysis"
	"gostats/internal/core"
	"gostats/internal/flagging"
	"gostats/internal/model"
	"gostats/internal/reldb"
	"gostats/internal/schema"
	"gostats/internal/telemetry"
	"gostats/internal/trace"
	"gostats/internal/tsdb"
	"gostats/internal/xalt"
)

// SeriesSource resolves the assembled per-host series of a job for the
// detail page plots; nil means plots are unavailable (metadata only).
type SeriesSource func(jobID string) (*model.JobData, error)

// Server is the portal.
type Server struct {
	DB     *reldb.DB
	Reg    *schema.Registry
	Flags  []flagging.Flag
	Series SeriesSource
	// XALT, if set, supplies per-job environment records for the detail
	// page (modules, libraries, compiler) — the optional plugin of
	// §IV-B.
	XALT *xalt.DB
	// Metrics selects the registry request telemetry lands in; set
	// before the first request. Nil uses telemetry.Default().
	Metrics *telemetry.Registry
	// Cache is the generation-stamped response cache for the list and
	// aggregate pages; set it to nil (before the first request) to
	// disable caching.
	Cache *Cache
	// Lag, if set, backs the /api/lag endpoint with the ingest
	// pipeline's provenance recorder (per-stage latencies and per-host
	// freshness). Nil serves an empty summary.
	Lag *trace.Recorder
	// TSDB, if set, backs the /api/v1 metric routes (time-range queries,
	// top-N rankings, gauges). Nil answers those routes 503.
	TSDB *tsdb.DB
	// Limiter, if set, rate-limits every /api/v1 route per client
	// (X-Client-ID header, else peer host) with 429 + Retry-After. The
	// limiter sits outside the response cache, so rejected requests
	// never populate or evict cache entries. Nil means unlimited.
	Limiter *Limiter
	mux     *http.ServeMux
}

// NewServer builds a portal over the given job table.
func NewServer(db *reldb.DB, reg *schema.Registry, series SeriesSource) *Server {
	s := &Server{
		DB:     db,
		Reg:    reg,
		Flags:  flagging.Default(flagging.DefaultThresholds()),
		Series: series,
		Cache:  NewCache(512),
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("/", s.instrument("/", s.handleIndex))
	s.mux.HandleFunc("/jobs", s.instrument("/jobs", s.cacheable("/jobs", s.handleJobs)))
	s.mux.HandleFunc("/job/", s.instrument("/job/", s.handleJobDetail))
	s.mux.HandleFunc("/dates", s.instrument("/dates", s.cacheable("/dates", s.handleDates)))
	s.mux.HandleFunc("/user/", s.instrument("/user/", s.handleUser))
	s.mux.HandleFunc("/energy", s.instrument("/energy", s.cacheable("/energy", s.handleEnergy)))
	s.mux.HandleFunc("/api/fields", s.instrument("/api/fields", s.handleFields))
	s.mux.HandleFunc("/api/jobs", s.instrument("/api/jobs", s.cacheable("/api/jobs", s.handleAPIJobs)))
	// /api/lag is live pipeline state, never cached.
	s.mux.HandleFunc("/api/lag", s.instrument("/api/lag", s.handleAPILag))
	// The versioned query API. Wrapping order matters: the limiter sits
	// outside the cache so a 429 never renders or poisons an entry, and
	// each route's cache is stamped by the generation of the store that
	// actually backs it (job table vs metric store).
	jobGen := func() uint64 { return s.DB.Generation() }
	for route, h := range map[string]struct {
		gen func() uint64
		h   http.HandlerFunc
	}{
		"/api/v1/jobs":      {jobGen, s.handleV1Jobs},
		"/api/v1/top/jobs":  {jobGen, s.handleV1TopJobs},
		"/api/v1/metrics":   {s.tsdbGen, s.handleV1Metrics},
		"/api/v1/top/hosts": {s.tsdbGen, s.handleV1TopHosts},
		"/api/v1/gauges":    {s.tsdbGen, s.handleV1Gauges},
	} {
		s.mux.HandleFunc(route, s.instrument(route, s.limit(s.cacheableGen(route, h.gen, h.h))))
	}
	return s
}

// registry returns the telemetry registry requests are recorded in.
func (s *Server) registry() *telemetry.Registry {
	if s.Metrics != nil {
		return s.Metrics
	}
	return telemetry.Default()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request count/latency/status
// telemetry, labeled by the mux route pattern (not the raw URL, which
// would explode series cardinality).
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reg := s.registry()
		timer := reg.Histogram("gostats_portal_request_seconds",
			"Portal request latency by route.", telemetry.LatencyBuckets,
			"route", route).Start()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		timer.Stop()
		reg.Counter("gostats_portal_requests_total",
			"Portal requests by route and status.",
			"route", route, "status", strconv.Itoa(sw.status)).Inc()
	}
}

// parseFilters converts request query parameters into reldb filters.
// Supported: exe, user, queue, status (exact); jobid (redirect target);
// fieldN/opN/valN triples (N = 1..3) for the portal Search fields;
// start/end bounds on job end time.
func parseFilters(r *http.Request) ([]reldb.Filter, error) {
	q := r.URL.Query()
	var fs []reldb.Filter
	for _, meta := range []string{"exe", "user", "queue", "status", "jobname"} {
		if v := q.Get(meta); v != "" {
			fs = append(fs, reldb.F(meta, v))
		}
	}
	for i := 1; i <= 3; i++ {
		field := q.Get(fmt.Sprintf("field%d", i))
		if field == "" {
			continue
		}
		op := q.Get(fmt.Sprintf("op%d", i))
		if op == "" {
			op = "gte"
		}
		valStr := q.Get(fmt.Sprintf("val%d", i))
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("portal: search field %d: bad value %q", i, valStr)
		}
		fs = append(fs, reldb.F(field+"__"+op, val))
	}
	if v := q.Get("start"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("portal: bad start %q", v)
		}
		fs = append(fs, reldb.F("endtime__gte", t))
	}
	if v := q.Get("end"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("portal: bad end %q", v)
		}
		fs = append(fs, reldb.F("endtime__lte", t))
	}
	return fs, nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	// Job ID box shortcut.
	if id := r.URL.Query().Get("jobid"); id != "" {
		http.Redirect(w, r, "/job/"+id, http.StatusFound)
		return
	}
	data := struct {
		Fields []string
		Total  int
	}{reldb.NumericFields(), s.DB.Len()}
	render(w, indexTmpl, data)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	filters, err := parseFilters(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rows, err := s.DB.QueryOrdered(reldb.QueryOpts{OrderBy: "-starttime"}, filters...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// One sweep over the rows already fetched builds all four Fig 4
	// histograms — no second pass over the table.
	hist, err := analysis.HistogramsRows(rows, 20)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Flagged sublist (§V-A): run the flags over the result set.
	type flagged struct {
		JobID string
		Flags string
	}
	var flaggedJobs []flagged
	for _, row := range rows {
		if raised := flagging.Evaluate(s.Flags, row); len(raised) > 0 {
			flaggedJobs = append(flaggedJobs, flagged{row.JobID, strings.Join(raised, ", ")})
		}
	}
	limit := 200
	display := rows
	if len(display) > limit {
		display = display[:limit]
	}
	data := struct {
		Query     string
		Rows      []*reldb.JobRow
		Total     int
		Truncated bool
		Flagged   []flagged
		HistSVGs  []template.HTML
	}{
		Query:     r.URL.RawQuery,
		Rows:      display,
		Total:     len(rows),
		Truncated: len(rows) > limit,
		Flagged:   flaggedJobs,
		HistSVGs: []template.HTML{
			template.HTML(HistogramSVG(hist.Runtime, "Run Time (s)")),
			template.HTML(HistogramSVG(hist.Nodes, "Nodes")),
			template.HTML(HistogramSVG(hist.Wait, "Queue Wait (s)")),
			template.HTML(HistogramSVG(hist.MaxMD, "Max Metadata Reqs (/s)")),
		},
	}
	render(w, jobsTmpl, data)
}

func (s *Server) handleJobDetail(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/job/")
	row := s.DB.Get(id)
	if row == nil {
		http.NotFound(w, r)
		return
	}
	// Metric pass/fail report.
	type check struct {
		Flag   string
		Desc   string
		Passed bool
	}
	var checks []check
	for _, f := range s.Flags {
		checks = append(checks, check{f.Name, f.Desc, !f.Test(row)})
	}
	// Fig 5 panels when series data is available.
	var panels []template.HTML
	if s.Series != nil {
		if jd, err := s.Series(id); err == nil && jd != nil {
			if js, err := core.TimeSeries(jd, s.Reg); err == nil {
				for _, p := range js.Panels {
					panels = append(panels, template.HTML(PanelSVG(p)))
				}
			}
		}
	}
	// Environment from the XALT plugin, when enabled.
	var env *xalt.Record
	if s.XALT != nil {
		if rec, ok := s.XALT.Get(id); ok {
			env = &rec
		}
	}
	data := struct {
		Row    *reldb.JobRow
		M      core.Summary
		Checks []check
		Panels []template.HTML
		Env    *xalt.Record
	}{row, row.Metrics, checks, panels, env}
	render(w, detailTmpl, data)
}

// handleDates is the Fig 3 "view all jobs for a given date" browser: one
// row per simulated day with its completed-job count.
func (s *Server) handleDates(w http.ResponseWriter, r *http.Request) {
	type day struct {
		Start float64
		End   float64
		Label string
		Count int
	}
	counts := map[int64]int{}
	for _, row := range s.DB.All() {
		counts[int64(row.EndTime)/86400]++
	}
	keys := make([]int64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	days := make([]day, 0, len(keys))
	for _, k := range keys {
		days = append(days, day{
			Start: float64(k * 86400),
			End:   float64((k + 1) * 86400),
			Label: fmt.Sprintf("day %d", k),
			Count: counts[k],
		})
	}
	render(w, datesTmpl, struct{ Days []day }{days})
}

// handleUser summarizes one user's jobs.
func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/user/")
	rows, err := s.DB.Query(reldb.F("user", name))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(rows) == 0 {
		http.NotFound(w, r)
		return
	}
	var nodeHours, cpu float64
	for _, row := range rows {
		nodeHours += row.NodeHours()
		cpu += row.Metrics.CPUUsage
	}
	limit := rows
	if len(limit) > 200 {
		limit = limit[:200]
	}
	data := struct {
		User      string
		Jobs      int
		NodeHours float64
		AvgCPU    float64
		Rows      []*reldb.JobRow
	}{name, len(rows), nodeHours, cpu / float64(len(rows)), limit}
	render(w, userTmpl, data)
}

// handleEnergy serves the §I-C energy breakdown for the whole table.
func (s *Server) handleEnergy(w http.ResponseWriter, r *http.Request) {
	es, err := analysis.Energy(s.DB, 15)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	render(w, energyTmpl, es)
}

func (s *Server) handleFields(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reldb.NumericFields())
}

func (s *Server) handleAPIJobs(w http.ResponseWriter, r *http.Request) {
	filters, err := parseFilters(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rows, err := s.DB.Query(filters...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	type apiRow struct {
		JobID    string  `json:"jobid"`
		User     string  `json:"user"`
		Exe      string  `json:"exe"`
		Nodes    int     `json:"nodes"`
		RunTime  float64 `json:"runtime"`
		CPUUsage float64 `json:"cpu_usage"`
	}
	out := make([]apiRow, len(rows))
	for i, row := range rows {
		out[i] = apiRow{row.JobID, row.User, row.Exe, row.Nodes, row.RunTime(), row.Metrics.CPUUsage}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleAPILag summarizes ingest pipeline lag: per-stage hop latencies
// and per-host freshness (now - origin of the newest queryable
// snapshot), straight from the provenance recorder. Before serving, the
// freshness gauges are re-aged against the current clock so a quiet
// pipeline reads as growing staleness, not frozen health.
func (s *Server) handleAPILag(w http.ResponseWriter, r *http.Request) {
	s.Lag.RefreshFreshness()
	sum := s.Lag.Snapshot()
	if sum.Stages == nil {
		sum.Stages = []trace.StageLag{}
	}
	if sum.Hosts == nil {
		sum.Hosts = []trace.HostFreshness{}
	}
	if sum.Partitions == nil {
		// Partition rows appear only in fabric mode; an empty list (not
		// null) keeps the field shape stable for clients either way.
		sum.Partitions = []trace.PartitionLag{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sum)
}

func render(w http.ResponseWriter, t *template.Template, data interface{}) {
	// Render into a buffer first so a template error can still produce a
	// clean 500 instead of a half-written page.
	var buf bytes.Buffer
	if err := t.Execute(&buf, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(buf.Bytes())
}
