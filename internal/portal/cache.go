package portal

import (
	"bytes"
	"net/http"
	"sync"
)

// Cache is the portal's generation-stamped response cache. Entries are
// keyed by route + canonical query string and stamped with the job
// table's generation counter at render time; an Insert bumps the
// generation, so every stale entry misses on its next lookup without
// any explicit invalidation walk. Under steady browsing between ETL
// loads — the portal's dominant regime — repeated queries are served
// straight from memory.
type Cache struct {
	capacity int
	mu       sync.Mutex
	entries  map[string]*cacheEntry
	order    []string // insertion order, for oldest-first eviction
	// inflight collapses concurrent misses on one key to a single
	// render: the first requester becomes the leader, the rest wait for
	// its channel to close and re-check the cache.
	inflight map[string]chan struct{}
}

type cacheEntry struct {
	gen         uint64
	contentType string
	body        []byte
}

// NewCache returns a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[string]*cacheEntry),
		inflight: make(map[string]chan struct{}),
	}
}

// Len reports the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// get returns the entry for key if it was rendered at generation gen.
// A stale entry is dropped on sight.
func (c *Cache) get(key string, gen uint64) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	if e.gen != gen {
		delete(c.entries, key)
		return nil, false
	}
	return e, true
}

// put stores an entry, evicting oldest-inserted keys over capacity.
func (c *Cache) put(key string, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; !exists {
		c.order = append(c.order, key)
	}
	c.entries[key] = e
	for len(c.entries) > c.capacity && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, victim)
	}
}

// begin claims the render for key: the caller is the leader when the
// returned channel is nil, otherwise a leader is already rendering and
// the caller should wait for the channel to close and retry the lookup.
func (c *Cache) begin(key string) chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ch, ok := c.inflight[key]; ok {
		return ch
	}
	c.inflight[key] = make(chan struct{})
	return nil
}

// done releases the leader's claim and wakes the waiters.
func (c *Cache) done(key string) {
	c.mu.Lock()
	ch := c.inflight[key]
	delete(c.inflight, key)
	c.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// captureWriter buffers a handler's response so it can be both sent to
// the client and stored in the cache.
type captureWriter struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func newCaptureWriter() *captureWriter {
	return &captureWriter{header: make(http.Header), status: http.StatusOK}
}

func (w *captureWriter) Header() http.Header { return w.header }

func (w *captureWriter) WriteHeader(code int) { w.status = code }

func (w *captureWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

// cacheable wraps a GET handler with the response cache, stamped by the
// job table's generation.
func (s *Server) cacheable(route string, h http.HandlerFunc) http.HandlerFunc {
	return s.cacheableGen(route, func() uint64 { return s.DB.Generation() }, h)
}

// cacheableGen is cacheable with an explicit generation source, so
// routes backed by the metric store stamp entries with its generation
// rather than the job table's — each route invalidates exactly when its
// own backing data changes. The generation is read before rendering: a
// concurrent write can only make the stored entry stale-stamped (an
// extra miss later), never serve stale data after the store changed.
func (s *Server) cacheableGen(route string, gen func() uint64, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c := s.Cache
		if c == nil || r.Method != http.MethodGet {
			h(w, r)
			return
		}
		reg := s.registry()
		key := route + "?" + r.URL.Query().Encode() // Encode sorts params
		var g uint64
		for {
			g = gen()
			if e, ok := c.get(key, g); ok {
				reg.Counter("gostats_portal_cache_hits_total",
					"Portal response cache hits by route.", "route", route).Inc()
				w.Header().Set("Content-Type", e.contentType)
				w.Write(e.body)
				return
			}
			ch := c.begin(key)
			if ch == nil {
				break // this request is the render leader
			}
			// Another request is rendering this key; wait it out and
			// re-check — its entry is usually the hit we need.
			<-ch
		}
		defer c.done(key)
		reg.Counter("gostats_portal_cache_misses_total",
			"Portal response cache misses by route.", "route", route).Inc()
		cw := newCaptureWriter()
		h(cw, r)
		for k, vs := range cw.header {
			w.Header()[k] = vs
		}
		if cw.status != http.StatusOK {
			w.WriteHeader(cw.status)
		}
		body := cw.buf.Bytes()
		w.Write(body)
		if cw.status == http.StatusOK {
			c.put(key, &cacheEntry{gen: g, contentType: cw.header.Get("Content-Type"), body: body})
		}
	}
}
