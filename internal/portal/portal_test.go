package portal

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gostats/internal/chip"
	"gostats/internal/cluster"
	"gostats/internal/core"
	"gostats/internal/etl"
	"gostats/internal/model"
	"gostats/internal/reldb"
	"gostats/internal/stats"
	"gostats/internal/telemetry"
	"gostats/internal/trace"
	"gostats/internal/workload"
	"gostats/internal/xalt"
)

// buildPortal assembles a portal over a small simulated population with
// real per-job series for one job.
func buildPortal(t *testing.T) (*Server, string) {
	t.Helper()
	cfg := chip.StampedeNode()
	db := reldb.New()
	seriesData := map[string]*model.JobData{}

	mk := func(id, user, exe string, nodes int, runtime float64, m workload.Model) {
		spec := workload.Spec{
			JobID: id, User: user, Exe: exe, Queue: "normal", Nodes: nodes,
			Wayness: 16, Runtime: runtime, Status: workload.StatusCompleted,
			Model: m,
		}
		run, err := cluster.RunJob(spec, cfg, 600, 13)
		if err != nil {
			t.Fatal(err)
		}
		row, err := etl.BuildRow(run, cfg.Registry())
		if err != nil {
			t.Fatal(err)
		}
		db.Insert(row)
		seriesData[id] = run.JobData()
	}
	mk("100", "u042", "wrf.exe", 2, 3000, workload.PathologicalWRF("u042"))
	mk("101", "u100", "wrf.exe", 4, 3000, workload.Steady{Label: "wrf", P: workload.WRFProfile("u100")})
	mk("102", "u101", "namd2", 2, 1800, workload.Steady{Label: "v", P: workload.VectorizedCompute("u101", "namd2", 0.8)})

	s := NewServer(db, cfg.Registry(), func(id string) (*model.JobData, error) {
		return seriesData[id], nil
	})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv.URL
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

func TestIndexPage(t *testing.T) {
	_, url := buildPortal(t)
	code, body := get(t, url+"/")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"Search fields", "metadatarate", "cpu_usage", "3 jobs"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestJobIDRedirect(t *testing.T) {
	_, url := buildPortal(t)
	client := &http.Client{CheckRedirect: func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(url + "/?jobid=100")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusFound || resp.Header.Get("Location") != "/job/100" {
		t.Errorf("redirect = %d %q", resp.StatusCode, resp.Header.Get("Location"))
	}
}

func TestJobsQueryWithHistogramsAndFlags(t *testing.T) {
	_, url := buildPortal(t)
	code, body := get(t, url+"/jobs?exe=wrf.exe&field1=runtime&op1=gte&val1=600")
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	if !strings.Contains(body, "2 jobs match") {
		t.Errorf("wrong match count: %s", body[:200])
	}
	// Four histogram SVGs (Fig 4).
	if n := strings.Count(body, "<svg"); n != 4 {
		t.Errorf("svg count = %d, want 4", n)
	}
	// The pathological job must appear in the flagged sublist.
	if !strings.Contains(body, "Flagged jobs") || !strings.Contains(body, "high_metadata_rate") {
		t.Error("pathological job not flagged on query page")
	}
	// Job rows link to detail pages.
	if !strings.Contains(body, `href="/job/100"`) {
		t.Error("job links missing")
	}
}

func TestJobsBadQuery(t *testing.T) {
	_, url := buildPortal(t)
	code, _ := get(t, url+"/jobs?field1=runtime&val1=abc")
	if code != http.StatusBadRequest {
		t.Errorf("bad value status = %d", code)
	}
	code, _ = get(t, url+"/jobs?field1=bogus&val1=1")
	if code != http.StatusBadRequest {
		t.Errorf("bad field status = %d", code)
	}
	code, _ = get(t, url+"/jobs?start=xyz")
	if code != http.StatusBadRequest {
		t.Errorf("bad start status = %d", code)
	}
}

func TestJobDetailPage(t *testing.T) {
	_, url := buildPortal(t)
	code, body := get(t, url+"/job/100")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"Job 100", "u042", "wrf.exe", "MetaDataRate", "Metric checks",
		"Per-node time series", "Gigaflops", "CPU User Fraction",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("detail missing %q", want)
		}
	}
	// Six Fig 5 panels.
	if n := strings.Count(body, "<svg"); n != 6 {
		t.Errorf("panel count = %d, want 6", n)
	}
	// The metadata check must FAIL for the pathological job.
	if !strings.Contains(body, "FAIL") {
		t.Error("no failed checks for pathological job")
	}
}

func TestJobDetailNotFound(t *testing.T) {
	_, url := buildPortal(t)
	code, _ := get(t, url+"/job/999999")
	if code != http.StatusNotFound {
		t.Errorf("status = %d", code)
	}
}

func TestFieldsAPI(t *testing.T) {
	_, url := buildPortal(t)
	code, body := get(t, url+"/api/fields")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var fields []string
	if err := json.Unmarshal([]byte(body), &fields); err != nil {
		t.Fatal(err)
	}
	if len(fields) < 25 {
		t.Errorf("fields = %d", len(fields))
	}
}

func TestJobsAPI(t *testing.T) {
	_, url := buildPortal(t)
	code, body := get(t, url+"/api/jobs?exe=wrf.exe")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var rows []map[string]interface{}
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("api rows = %d", len(rows))
	}
	if rows[0]["jobid"] == "" {
		t.Errorf("row = %v", rows[0])
	}
}

func TestPanelSVGShapes(t *testing.T) {
	p := core.Panel{
		Name: "Test", Unit: "GF/s",
		Times: []float64{0, 600, 1200},
		Nodes: []core.NodeSeries{
			{Host: "a", Values: []float64{1, 2, 3}},
			{Host: "b", Values: []float64{3, 2, 1}},
		},
	}
	svg := PanelSVG(p)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Error("not an svg")
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("polyline count = %d", strings.Count(svg, "<polyline"))
	}
	// Empty panel renders a placeholder, not a panic.
	empty := PanelSVG(core.Panel{Name: "Empty"})
	if !strings.Contains(empty, "no data") {
		t.Error("empty panel missing placeholder")
	}
	// Single-point series renders a dot.
	dot := PanelSVG(core.Panel{Name: "Dot", Times: []float64{5},
		Nodes: []core.NodeSeries{{Host: "a", Values: []float64{1}}}})
	if !strings.Contains(dot, "<circle") {
		t.Error("single point not rendered as circle")
	}
}

func TestHistogramSVG(t *testing.T) {
	h := stats.NewHistogram(0, 10, 5)
	for i := 0; i < 20; i++ {
		h.Add(float64(i % 10))
	}
	svg := HistogramSVG(h, "Run Time")
	if strings.Count(svg, "<rect") != 5 {
		t.Errorf("rect count = %d", strings.Count(svg, "<rect"))
	}
	if !strings.Contains(svg, "Run Time (n=20)") {
		t.Error("title missing")
	}
	// Empty histogram renders without division by zero.
	empty := HistogramSVG(stats.NewHistogram(0, 1, 3), "Empty")
	if !strings.Contains(empty, "<svg") {
		t.Error("empty histogram failed to render")
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		5:     "5",
		1500:  "1.5k",
		2.5e6: "2.5M",
		3e9:   "3G",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%g) = %q, want %q", v, got, want)
		}
	}
}

func ExampleHistogramSVG() {
	h := stats.NewHistogram(0, 4, 2)
	h.Add(1)
	svg := HistogramSVG(h, "demo")
	fmt.Println(strings.Contains(svg, "demo (n=1)"))
	// Output: true
}

func TestDatesPage(t *testing.T) {
	_, url := buildPortal(t)
	code, body := get(t, url+"/dates")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "day 0") {
		t.Errorf("dates page missing day rows: %s", body)
	}
	if !strings.Contains(body, "/jobs?start=0&amp;end=86400") &&
		!strings.Contains(body, "/jobs?start=0&end=86400") {
		t.Error("dates page missing day links")
	}
}

func TestUserPage(t *testing.T) {
	_, url := buildPortal(t)
	code, body := get(t, url+"/user/u042")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"User u042", "node-hours", "wrf.exe"} {
		if !strings.Contains(body, want) {
			t.Errorf("user page missing %q", want)
		}
	}
	code, _ = get(t, url+"/user/ghost")
	if code != http.StatusNotFound {
		t.Errorf("unknown user status = %d", code)
	}
}

func TestEnergyPage(t *testing.T) {
	_, url := buildPortal(t)
	code, body := get(t, url+"/energy")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"Energy use", "kWh total", "DRAM", "Top consumers"} {
		if !strings.Contains(body, want) {
			t.Errorf("energy page missing %q", want)
		}
	}
}

func TestDetailPageShowsXALT(t *testing.T) {
	s, url := buildPortal(t)
	s.XALT = xalt.NewDB()
	rec := xalt.Capture("100", "wrf.exe", "u042", false, 1)
	if err := s.XALT.Put(rec); err != nil {
		t.Fatal(err)
	}
	_, body := get(t, url+"/job/100")
	for _, want := range []string{"Environment (XALT)", "netcdf", rec.Compiler} {
		if !strings.Contains(body, want) {
			t.Errorf("detail page missing %q", want)
		}
	}
	// A job without a record degrades gracefully.
	_, body = get(t, url+"/job/101")
	if strings.Contains(body, "Environment (XALT)") {
		t.Error("XALT section shown without a record")
	}
}

func TestAPILag(t *testing.T) {
	s, url := buildPortal(t)

	// No recorder wired: the endpoint degrades to an empty summary.
	code, body := get(t, url+"/api/lag")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var empty trace.LagSummary
	if err := json.Unmarshal([]byte(body), &empty); err != nil {
		t.Fatalf("bad empty lag JSON %q: %v", body, err)
	}
	if len(empty.Stages) != 0 || len(empty.Hosts) != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}

	// Wire a recorder and run two snapshots through simulated hops.
	rec := trace.NewRecorder(telemetry.NewRegistry())
	now := int64(1e12)
	rec.Now = func() int64 { now += 3_000_000; return now }
	for _, host := range []string{"c1", "c2"} {
		snap := model.Snapshot{Host: host}
		rec.Stamp(&snap, model.StageCollect)
		rec.Stamp(&snap, model.StagePublish)
		rec.Stamp(&snap, model.StageBrokerDeliver)
		rec.Stamp(&snap, model.StageStoreIngest)
		rec.MarkQueryable(host, snap)
	}
	s.Lag = rec

	code, body = get(t, url+"/api/lag")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var sum trace.LagSummary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatalf("bad lag JSON %q: %v", body, err)
	}
	if len(sum.Stages) != 3 {
		t.Fatalf("stages = %+v, want publish/broker_deliver/store_ingest", sum.Stages)
	}
	for _, st := range sum.Stages {
		if st.Count != 2 || st.MeanSeconds <= 0 {
			t.Errorf("stage %s: count %d mean %g", st.Stage, st.Count, st.MeanSeconds)
		}
	}
	if len(sum.Hosts) != 2 || sum.Hosts[0].Host != "c1" || sum.Hosts[1].Host != "c2" {
		t.Fatalf("hosts = %+v", sum.Hosts)
	}
	for _, h := range sum.Hosts {
		if h.FreshnessSeconds <= 0 || h.NewestOriginUnixNs == 0 {
			t.Errorf("host %s freshness = %+v", h.Host, h)
		}
	}
}
