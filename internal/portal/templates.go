package portal

import "html/template"

// The portal's three pages. Styling is deliberately spare; structure
// mirrors the paper's Fig 3 (search form), the query result page with
// Fig 4 histograms and the flagged sublist, and the Fig 5 detail page.

// funcs are the helpers available to all portal templates.
var funcs = template.FuncMap{
	"mul": func(a, b float64) float64 { return a * b },
}

var indexTmpl = template.Must(template.New("index").Funcs(funcs).Parse(`<!DOCTYPE html>
<html><head><title>gostats</title></head>
<body>
<h1>gostats — job monitoring</h1>
<p>{{.Total}} jobs in database.</p>
<form action="/jobs" method="get">
  <fieldset><legend>Metadata</legend>
    exe <input name="exe"> user <input name="user">
    queue <input name="queue"> status <input name="status">
  </fieldset>
  <fieldset><legend>Search fields (metric, comparison, threshold)</legend>
    <div>
      <select name="field1"><option value=""></option>{{range .Fields}}<option>{{.}}</option>{{end}}</select>
      <select name="op1"><option>gte</option><option>gt</option><option>lte</option><option>lt</option></select>
      <input name="val1" size="10">
    </div>
    <div>
      <select name="field2"><option value=""></option>{{range .Fields}}<option>{{.}}</option>{{end}}</select>
      <select name="op2"><option>gte</option><option>gt</option><option>lte</option><option>lt</option></select>
      <input name="val2" size="10">
    </div>
    <div>
      <select name="field3"><option value=""></option>{{range .Fields}}<option>{{.}}</option>{{end}}</select>
      <select name="op3"><option>gte</option><option>gt</option><option>lte</option><option>lt</option></select>
      <input name="val3" size="10">
    </div>
  </fieldset>
  <fieldset><legend>Time window (epoch seconds)</legend>
    start <input name="start" size="12"> end <input name="end" size="12">
  </fieldset>
  <button type="submit">Search</button>
</form>
<form action="/" method="get">
  Job ID <input name="jobid" size="12"><button type="submit">View</button>
</form>
<p><a href="/dates">browse by date</a> · <a href="/energy">energy use</a></p>
</body></html>`))

var jobsTmpl = template.Must(template.New("jobs").Funcs(funcs).Parse(`<!DOCTYPE html>
<html><head><title>gostats — jobs</title></head>
<body>
<h1>{{.Total}} jobs match</h1>
<p><a href="/">new search</a></p>
<div>{{range .HistSVGs}}{{.}}{{end}}</div>
{{if .Flagged}}
<h2>Flagged jobs</h2>
<table border="1" cellpadding="3">
<tr><th>Job</th><th>Flags</th></tr>
{{range .Flagged}}<tr><td><a href="/job/{{.JobID}}">{{.JobID}}</a></td><td>{{.Flags}}</td></tr>{{end}}
</table>
{{end}}
<h2>Jobs{{if .Truncated}} (first 200){{end}}</h2>
<table border="1" cellpadding="3">
<tr><th>Job</th><th>User</th><th>Exe</th><th>Queue</th><th>Status</th>
<th>Nodes</th><th>Run (s)</th><th>Wait (s)</th><th>Node-hours</th></tr>
{{range .Rows}}
<tr><td><a href="/job/{{.JobID}}">{{.JobID}}</a></td>
<td>{{.User}}</td><td>{{.Exe}}</td><td>{{.Queue}}</td><td>{{.Status}}</td>
<td>{{.Nodes}}</td><td>{{printf "%.0f" .RunTime}}</td>
<td>{{printf "%.0f" .WaitTime}}</td><td>{{printf "%.1f" .NodeHours}}</td></tr>
{{end}}
</table>
</body></html>`))

var detailTmpl = template.Must(template.New("detail").Funcs(funcs).Parse(`<!DOCTYPE html>
<html><head><title>gostats — job {{.Row.JobID}}</title></head>
<body>
<h1>Job {{.Row.JobID}}</h1>
<p><a href="/">new search</a></p>
<table border="1" cellpadding="3">
<tr><th>User</th><td>{{.Row.User}}</td><th>Account</th><td>{{.Row.Account}}</td></tr>
<tr><th>Exe</th><td>{{.Row.Exe}}</td><th>Job name</th><td>{{.Row.JobName}}</td></tr>
<tr><th>Queue</th><td>{{.Row.Queue}}</td><th>Status</th><td>{{.Row.Status}}</td></tr>
<tr><th>Nodes</th><td>{{.Row.Nodes}}</td><th>Wayness</th><td>{{.Row.Wayness}}</td></tr>
<tr><th>Run time</th><td>{{printf "%.0f s" .Row.RunTime}}</td>
    <th>Queue wait</th><td>{{printf "%.0f s" .Row.WaitTime}}</td></tr>
</table>

<h2>Metrics</h2>
<table border="1" cellpadding="3">
<tr><th>MetaDataRate</th><td>{{printf "%.4g" .M.MetaDataRate}}/s</td>
    <th>MDCReqs</th><td>{{printf "%.4g" .M.MDCReqs}}/s</td></tr>
<tr><th>OSCReqs</th><td>{{printf "%.4g" .M.OSCReqs}}/s</td>
    <th>LLiteOpenClose</th><td>{{printf "%.4g" .M.LLiteOpenClose}}/s</td></tr>
<tr><th>LnetAveBW</th><td>{{printf "%.4g" .M.LnetAveBW}} B/s</td>
    <th>LnetMaxBW</th><td>{{printf "%.4g" .M.LnetMaxBW}} B/s</td></tr>
<tr><th>InternodeIBAveBW</th><td>{{printf "%.4g" .M.InternodeIBAveBW}} B/s</td>
    <th>GigEBW</th><td>{{printf "%.4g" .M.GigEBW}} B/s</td></tr>
<tr><th>flops</th><td>{{printf "%.4g" .M.Flops}}/s</td>
    <th>VecPercent</th><td>{{printf "%.1f%%" (mul .M.VecPercent 100)}}</td></tr>
<tr><th>cpi</th><td>{{printf "%.3g" .M.CPI}}</td>
    <th>mbw</th><td>{{printf "%.4g" .M.MemBW}} B/s</td></tr>
<tr><th>MemUsage</th><td>{{printf "%.4g" .M.MemUsage}} B</td>
    <th>CPU_Usage</th><td>{{printf "%.1f%%" (mul .M.CPUUsage 100)}}</td></tr>
<tr><th>idle</th><td>{{printf "%.3g" .M.Idle}}</td>
    <th>catastrophe</th><td>{{printf "%.3g" .M.Catastrophe}}</td></tr>
<tr><th>MIC_Usage</th><td>{{printf "%.1f%%" (mul .M.MICUsage 100)}}</td>
    <th>PkgWatts</th><td>{{printf "%.4g" .M.PkgWatts}} W</td></tr>
</table>

<h2>Metric checks</h2>
<table border="1" cellpadding="3">
<tr><th>Check</th><th>Result</th><th>Description</th></tr>
{{range .Checks}}
<tr><td>{{.Flag}}</td><td>{{if .Passed}}pass{{else}}<b>FAIL</b>{{end}}</td><td>{{.Desc}}</td></tr>
{{end}}
</table>

{{if .Env}}
<h2>Environment (XALT)</h2>
<table border="1" cellpadding="3">
<tr><th>Executable</th><td>{{.Env.ExePath}}</td></tr>
<tr><th>Working dir</th><td>{{.Env.WorkDir}}</td></tr>
<tr><th>Modules</th><td>{{range .Env.Modules}}{{.}} {{end}}</td></tr>
<tr><th>Libraries</th><td>{{range .Env.Libraries}}{{.}} {{end}}</td></tr>
<tr><th>Compiler</th><td>{{.Env.Compiler}} (vector ISA {{.Env.VecISA}})</td></tr>
</table>
{{end}}

{{if .Panels}}
<h2>Per-node time series</h2>
{{range .Panels}}<div>{{.}}</div>{{end}}
{{else}}
<p><i>No time-series data available for this job.</i></p>
{{end}}
</body></html>`))

var datesTmpl = template.Must(template.New("dates").Funcs(funcs).Parse(`<!DOCTYPE html>
<html><head><title>gostats — browse by date</title></head>
<body>
<h1>Jobs by day</h1>
<p><a href="/">new search</a></p>
<table border="1" cellpadding="3">
<tr><th>Day</th><th>Completed jobs</th></tr>
{{range .Days}}
<tr><td><a href="/jobs?start={{printf "%.0f" .Start}}&end={{printf "%.0f" .End}}">{{.Label}}</a></td>
<td>{{.Count}}</td></tr>
{{end}}
</table>
</body></html>`))

var userTmpl = template.Must(template.New("user").Funcs(funcs).Parse(`<!DOCTYPE html>
<html><head><title>gostats — user {{.User}}</title></head>
<body>
<h1>User {{.User}}</h1>
<p><a href="/">new search</a></p>
<p>{{.Jobs}} jobs, {{printf "%.1f" .NodeHours}} node-hours,
mean CPU_Usage {{printf "%.1f%%" (mul .AvgCPU 100)}}</p>
<table border="1" cellpadding="3">
<tr><th>Job</th><th>Exe</th><th>Nodes</th><th>Run (s)</th><th>CPU</th><th>MetaDataRate</th></tr>
{{range .Rows}}
<tr><td><a href="/job/{{.JobID}}">{{.JobID}}</a></td><td>{{.Exe}}</td>
<td>{{.Nodes}}</td><td>{{printf "%.0f" .RunTime}}</td>
<td>{{printf "%.1f%%" (mul .Metrics.CPUUsage 100)}}</td>
<td>{{printf "%.4g" .Metrics.MetaDataRate}}/s</td></tr>
{{end}}
</table>
</body></html>`))

var energyTmpl = template.Must(template.New("energy").Funcs(funcs).Parse(`<!DOCTYPE html>
<html><head><title>gostats — energy</title></head>
<body>
<h1>Energy use</h1>
<p><a href="/">new search</a></p>
<p>{{.Jobs}} jobs, {{printf "%.1f" .TotalKWh}} kWh total.</p>
<table border="1" cellpadding="3">
<tr><th>Plane</th><th>Mean W/node</th><th>Share of package</th></tr>
<tr><td>package</td><td>{{printf "%.1f" .AvgPkgWatts}}</td><td>100%</td></tr>
<tr><td>cores + LLC</td><td>{{printf "%.1f" .AvgCoreWatts}}</td><td>{{printf "%.0f%%" (mul .CoreShare 100)}}</td></tr>
<tr><td>DRAM</td><td>{{printf "%.1f" .AvgDRAMWatts}}</td><td>{{printf "%.0f%%" (mul .DRAMShare 100)}}</td></tr>
</table>
<h2>Top consumers</h2>
<table border="1" cellpadding="3">
<tr><th>User</th><th>Jobs</th><th>kWh</th></tr>
{{range .TopConsumers}}
<tr><td><a href="/user/{{.User}}">{{.User}}</a></td><td>{{.Jobs}}</td><td>{{printf "%.2f" .Mean}}</td></tr>
{{end}}
</table>
</body></html>`))
