package portal

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gostats/internal/telemetry"
	"gostats/internal/tsdb"
)

type v1JobsEnvelope struct {
	Total  int        `json:"total"`
	Offset int        `json:"offset"`
	Limit  int        `json:"limit"`
	Jobs   []v1JobRow `json:"jobs"`
}

func getJSON(t *testing.T, url string, v interface{}) {
	t.Helper()
	code, body := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, code, body)
	}
	if err := json.Unmarshal([]byte(body), v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, body)
	}
}

func TestV1JobsPagination(t *testing.T) {
	_, url := buildPortal(t)
	var env v1JobsEnvelope
	getJSON(t, url+"/api/v1/jobs?order_by=-runtime", &env)
	if env.Total != 3 || len(env.Jobs) != 3 {
		t.Fatalf("total %d, %d jobs; want 3, 3", env.Total, len(env.Jobs))
	}
	// Jobs 100 and 101 tie at runtime 3000 and must keep insertion order.
	for i, want := range []string{"100", "101", "102"} {
		if env.Jobs[i].JobID != want {
			t.Fatalf("order_by=-runtime row %d = %s, want %s", i, env.Jobs[i].JobID, want)
		}
	}
	// Page 2 of size 2 holds only the last job, with the full count.
	getJSON(t, url+"/api/v1/jobs?order_by=-runtime&limit=2&offset=2", &env)
	if env.Total != 3 || len(env.Jobs) != 1 || env.Jobs[0].JobID != "102" {
		t.Fatalf("page 2 = %+v", env)
	}
	// Offset past the end is empty, not an error.
	getJSON(t, url+"/api/v1/jobs?offset=99", &env)
	if env.Total != 3 || len(env.Jobs) != 0 {
		t.Fatalf("offset past end = %+v", env)
	}
	if code, _ := get(t, url+"/api/v1/jobs?offset=-1"); code != http.StatusBadRequest {
		t.Fatalf("negative offset: status %d", code)
	}
	if code, _ := get(t, url+"/api/v1/jobs?order_by=nosuch"); code != http.StatusBadRequest {
		t.Fatalf("bad order_by: status %d", code)
	}
}

func TestV1TopJobs(t *testing.T) {
	_, url := buildPortal(t)
	var ranked []struct {
		v1JobRow
		Value float64 `json:"value"`
	}
	getJSON(t, url+"/api/v1/top/jobs?field=runtime&n=2", &ranked)
	if len(ranked) != 2 || ranked[0].JobID != "100" || ranked[1].JobID != "101" {
		t.Fatalf("top 2 by runtime = %+v", ranked)
	}
	if ranked[0].Value != 3000 {
		t.Fatalf("ranked value = %g, want 3000", ranked[0].Value)
	}
	getJSON(t, url+"/api/v1/top/jobs?field=runtime&n=1&order=bottom", &ranked)
	if len(ranked) != 1 || ranked[0].JobID != "102" || ranked[0].Value != 1800 {
		t.Fatalf("bottom 1 by runtime = %+v", ranked)
	}
	if code, _ := get(t, url+"/api/v1/top/jobs?n=3"); code != http.StatusBadRequest {
		t.Fatalf("missing field: status %d", code)
	}
	if code, _ := get(t, url+"/api/v1/top/jobs?field=runtime&order=sideways"); code != http.StatusBadRequest {
		t.Fatalf("bad order: status %d", code)
	}
}

func TestV1MetricRoutes(t *testing.T) {
	s, url := buildPortal(t)
	// No metric store attached: 503, which must not be cached.
	if code, _ := get(t, url+"/api/v1/gauges"); code != http.StatusServiceUnavailable {
		t.Fatalf("no tsdb: status %d", code)
	}
	s.TSDB = tsdb.New()
	for hi, host := range []string{"c401-101", "c401-102"} {
		for ti := 0.0; ti < 600; ti += 60 {
			s.TSDB.Put(tsdb.Tags{Host: host, DevType: "cpu", Device: "cpu0", Event: "user"},
				ti, float64(hi+1))
		}
	}
	type series struct {
		Group  map[string]string `json:"group"`
		Points [][2]float64      `json:"points"`
	}
	var ss []series
	getJSON(t, url+"/api/v1/metrics?group_by=host&agg=sum&step=600", &ss)
	if len(ss) != 2 {
		t.Fatalf("got %d series, want 2", len(ss))
	}
	if ss[0].Group["host"] != "c401-101" || len(ss[0].Points) != 1 || ss[0].Points[0][1] != 10 {
		t.Fatalf("series 0 = %+v", ss[0])
	}
	var ranked []struct {
		Group map[string]string `json:"group"`
		Value float64           `json:"value"`
	}
	getJSON(t, url+"/api/v1/top/hosts?n=1&agg=sum", &ranked)
	if len(ranked) != 1 || ranked[0].Group["host"] != "c401-102" || ranked[0].Value != 20 {
		t.Fatalf("top host = %+v", ranked)
	}
	var gauges []struct {
		Host  string  `json:"host"`
		Time  float64 `json:"time"`
		Value float64 `json:"value"`
	}
	getJSON(t, url+"/api/v1/gauges?host=c401-102", &gauges)
	if len(gauges) != 1 || gauges[0].Time != 540 || gauges[0].Value != 2 {
		t.Fatalf("gauges = %+v", gauges)
	}
	if code, _ := get(t, url+"/api/v1/metrics?agg=median"); code != http.StatusBadRequest {
		t.Fatalf("bad agg: status %d", code)
	}
}

// TestRateLimit429DoesNotPoisonCache drains one client's bucket and
// checks three things about the refusal: it carries Retry-After, it
// leaves previously cached entries warm for other clients, and it
// leaves no entry behind for URLs it blocked before they were ever
// rendered.
func TestRateLimit429DoesNotPoisonCache(t *testing.T) {
	s, _ := buildPortal(t)
	reg := telemetry.NewRegistry()
	s.Metrics = reg
	s.Limiter = NewLimiter(1, 2)
	clock := time.Unix(1000, 0)
	s.Limiter.now = func() time.Time { return clock }

	do := func(client, target string) (int, string, http.Header) {
		r := httptest.NewRequest("GET", target, nil)
		r.Header.Set("X-Client-ID", client)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		return w.Code, w.Body.String(), w.Result().Header
	}
	counter := func(name string, labels ...string) uint64 {
		return reg.Counter(name, "", labels...).Value()
	}
	const warmURL = "/api/v1/jobs?order_by=-runtime"

	// Burst of 2: render once, hit once, then the bucket is dry.
	code1, body1, _ := do("alice", warmURL)
	code2, body2, _ := do("alice", warmURL)
	if code1 != 200 || code2 != 200 || body1 != body2 {
		t.Fatalf("warmup: %d/%d, bodies equal=%v", code1, code2, body1 == body2)
	}
	code3, _, hdr := do("alice", warmURL)
	if code3 != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429", code3)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	if got := counter("gostats_portal_ratelimited_total"); got != 1 {
		t.Fatalf("ratelimited counter = %d, want 1", got)
	}
	hitsBefore := counter("gostats_portal_cache_hits_total", "route", "/api/v1/jobs")
	missesBefore := counter("gostats_portal_cache_misses_total", "route", "/api/v1/jobs")
	if hitsBefore != 1 || missesBefore != 1 {
		t.Fatalf("warmup counters: %d hits, %d misses; want 1, 1", hitsBefore, missesBefore)
	}

	// The refused request must not have evicted the warm entry: another
	// client gets a byte-identical cache hit.
	code4, body4, _ := do("bob", warmURL)
	if code4 != 200 || body4 != body1 {
		t.Fatalf("post-429 read: status %d, cached=%v", code4, body4 == body1)
	}
	if got := counter("gostats_portal_cache_hits_total", "route", "/api/v1/jobs"); got != hitsBefore+1 {
		t.Fatalf("bob's read was not a cache hit (hits %d -> %d)", hitsBefore, got)
	}

	// A URL first seen by a drained client: the 429 must leave no cache
	// entry, so the next allowed client renders it fresh and correct.
	const coldURL = "/api/v1/jobs?user=u100"
	if code, _, _ := do("alice", coldURL); code != http.StatusTooManyRequests {
		t.Fatalf("drained client on cold URL: status %d, want 429", code)
	}
	code5, body5, _ := do("bob", coldURL)
	if code5 != 200 {
		t.Fatalf("cold URL after 429: status %d", code5)
	}
	var env v1JobsEnvelope
	if err := json.Unmarshal([]byte(body5), &env); err != nil || env.Total != 1 || env.Jobs[0].User != "u100" {
		t.Fatalf("cold URL rendered wrong: %v %s", err, body5)
	}
	if got := counter("gostats_portal_cache_misses_total", "route", "/api/v1/jobs"); got != missesBefore+1 {
		t.Fatalf("cold URL was not rendered fresh (misses %d)", got)
	}

	// Refill: one second restores one token for the drained client.
	clock = clock.Add(time.Second)
	if code, _, _ := do("alice", warmURL); code != 200 {
		t.Fatalf("after refill: status %d", code)
	}
}

// TestV1CacheInvalidatedByGeneration checks a v1 route's cached
// response goes stale the moment its backing store changes.
func TestV1CacheInvalidatedByGeneration(t *testing.T) {
	s, url := buildPortal(t)
	var env v1JobsEnvelope
	getJSON(t, url+"/api/v1/jobs", &env)
	if env.Total != 3 {
		t.Fatalf("total = %d, want 3", env.Total)
	}
	clone := *s.DB.Get("100")
	clone.JobID = "999"
	s.DB.Insert(&clone)
	getJSON(t, url+"/api/v1/jobs", &env)
	if env.Total != 4 {
		t.Fatalf("stale cache: total = %d, want 4", env.Total)
	}
}
