// Package etl wires the pipeline stages together: run (or read) raw
// per-host data, map it to jobs, compute Table I metrics, and ingest job
// rows into the relational store. It is the programmatic equivalent of
// the nightly job_etl cron the paper's deployment runs.
package etl

import (
	"runtime"
	"sync"

	"gostats/internal/acct"

	"gostats/internal/chip"
	"gostats/internal/cluster"
	"gostats/internal/core"
	"gostats/internal/model"
	"gostats/internal/rawfile"
	"gostats/internal/reldb"
	"gostats/internal/schema"
	"gostats/internal/telemetry"
	"gostats/internal/workload"
)

// etlMetrics are the batch-ingest telemetry series.
type etlMetrics struct {
	jobsMapped   *telemetry.Counter
	rowsIngested *telemetry.Counter
	batchSeconds *telemetry.Histogram
}

func newETLMetrics(reg *telemetry.Registry) *etlMetrics {
	return &etlMetrics{
		jobsMapped: reg.Counter("gostats_etl_jobs_mapped_total",
			"Jobs assembled from the raw store by the job mapper."),
		rowsIngested: reg.Counter("gostats_etl_rows_ingested_total",
			"Job rows reduced and inserted into the relational store."),
		batchSeconds: reg.Histogram("gostats_etl_batch_seconds",
			"Wall time of one store-ingest batch (map + reduce + insert).",
			[]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60, 300}),
	}
}

// BuildRow reduces one job run to its database row using the default
// (AVX) vector width.
func BuildRow(run *cluster.JobRun, reg *schema.Registry) (*reldb.JobRow, error) {
	return BuildRowWith(run, reg, core.VecWidth)
}

// BuildRowWith is BuildRow with the architecture's vector width (see
// chip.Descriptor.VecWidth).
func BuildRowWith(run *cluster.JobRun, reg *schema.Registry, vecWidth int) (*reldb.JobRow, error) {
	sum, err := core.ComputeWith(run.JobData(), reg, vecWidth)
	if err != nil {
		return nil, err
	}
	spec := run.Spec
	return &reldb.JobRow{
		JobID:      spec.JobID,
		User:       spec.User,
		Account:    spec.Account,
		Exe:        spec.Exe,
		JobName:    spec.JobName,
		Queue:      spec.Queue,
		Status:     string(spec.Status),
		Nodes:      spec.Nodes,
		Wayness:    spec.Wayness,
		Hosts:      run.Hosts,
		SubmitTime: spec.SubmitAt,
		StartTime:  run.StartTime,
		EndTime:    run.EndTime,
		Metrics:    *sum,
	}, nil
}

// FleetStats reports what a fleet run did.
type FleetStats struct {
	Jobs        int
	Failed      int     // jobs that errored in simulation or reduction
	CollectCost float64 // total simulated collector seconds
	NodeSeconds float64 // total simulated node-seconds of work
}

// RunFleet simulates every spec (each on dedicated nodes), computes its
// metrics and inserts the rows into a fresh DB. Jobs are distributed
// over a worker pool; results are deterministic in (specs, cfg,
// interval, seed) regardless of worker count because each job's RNG is
// derived from its id.
func RunFleet(specs []workload.Spec, cfg chip.NodeConfig, interval float64, seed int64, workers int) (*reldb.DB, FleetStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	db := reldb.New()
	reg := cfg.Registry()
	var (
		mu    sync.Mutex
		stats FleetStats
		wg    sync.WaitGroup
	)
	jobs := make(chan workload.Spec)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range jobs {
				run, err := cluster.RunJob(spec, cfg, interval, seed)
				if err != nil {
					mu.Lock()
					stats.Failed++
					mu.Unlock()
					continue
				}
				row, err := BuildRowWith(run, reg, cfg.Desc.VecWidth)
				if err != nil {
					mu.Lock()
					stats.Failed++
					mu.Unlock()
					continue
				}
				mu.Lock()
				db.Insert(row)
				stats.Jobs++
				stats.CollectCost += run.CollectCost
				stats.NodeSeconds += float64(spec.Nodes) * spec.Runtime
				mu.Unlock()
			}
		}()
	}
	for _, s := range specs {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	return db, stats, nil
}

// Meta is the scheduler accounting record the store-ingestion path joins
// against (the paper gets this from the batch system's logs).
type Meta struct {
	User    string
	Account string
	Exe     string
	JobName string
	Queue   string
	Status  string
	Nodes   int
	Wayness int
	Submit  float64
}

// MetaFromAcct converts a scheduler accounting record into the join
// table shape.
func MetaFromAcct(r acct.Record) Meta {
	return Meta{
		User: r.User, Account: r.Account, Exe: r.Exe, JobName: r.JobName,
		Queue: r.Queue, Status: r.State, Nodes: r.Nodes, Wayness: r.Wayness,
		Submit: r.Submit,
	}
}

// MetaFromSpec derives accounting metadata from a workload spec.
func MetaFromSpec(s workload.Spec) Meta {
	return Meta{
		User: s.User, Account: s.Account, Exe: s.Exe, JobName: s.JobName,
		Queue: s.Queue, Status: string(s.Status), Nodes: s.Nodes,
		Wayness: s.Wayness, Submit: s.SubmitAt,
	}
}

// IngestStore streams every archived snapshot in a central raw store —
// all hosts merged in global time order, damaged files recovered to
// their intact prefix — through the incremental Assembler, reducing
// each complete job to a row, joining the accounting metadata, and
// inserting into db. Jobs missing metadata are ingested with blank
// accounting fields rather than dropped — data beats completeness here,
// as in the real system. It returns the ids ingested, sorted.
//
// This is the batch face of the streaming core: raw files are decoded
// one snapshot at a time (text or binary, sniffed per file) and never
// materialized whole; memory scales with in-flight jobs, not with the
// store.
func IngestStore(st *rawfile.Store, reg *schema.Registry, meta map[string]Meta, db *reldb.DB) ([]string, error) {
	return IngestStoreJournaled(st, reg, meta, db, nil)
}

// IngestStoreJournaled is IngestStore with a crash-safe journal: every
// finalized row is appended to jnl the moment it exists, so a killed
// run resumes from the journal instead of starting over. A nil jnl
// degrades to the plain batch path.
func IngestStoreJournaled(st *rawfile.Store, reg *schema.Registry, meta map[string]Meta, db *reldb.DB, jnl *reldb.Journal) ([]string, error) {
	met := newETLMetrics(telemetry.Default())
	timer := met.batchSeconds.Start()
	defer timer.Stop()
	a := &Assembler{Registry: reg, Meta: meta, DB: db, Journal: jnl, EndGrace: DefaultEndGrace}
	if _, err := st.Walk(func(s model.Snapshot) error {
		a.Feed(s)
		return nil
	}); err != nil {
		return nil, err
	}
	a.Flush()
	return a.IngestedIDs(), a.Err()
}

// observedSpan returns the earliest and latest sample times across a
// job's hosts.
func observedSpan(jd *model.JobData) (first, last float64) {
	started := false
	for _, hd := range jd.Hosts {
		for _, byInst := range hd.Series {
			for _, s := range byInst {
				if len(s.Samples) == 0 {
					continue
				}
				f := s.Samples[0].Time
				l := s.Samples[len(s.Samples)-1].Time
				if !started || f < first {
					first = f
				}
				if !started || l > last {
					last = l
				}
				started = true
			}
		}
	}
	return first, last
}

// DefaultNodeConfig is the node type fleets run on unless a spec says
// otherwise.
func DefaultNodeConfig(queue string) chip.NodeConfig {
	if queue == "largemem" {
		return chip.LargeMemNode()
	}
	return chip.StampedeNode()
}

// RunFleetMixed is RunFleet but routes largemem-queue jobs to largemem
// nodes, as the scheduler does.
func RunFleetMixed(specs []workload.Spec, interval float64, seed int64, workers int) (*reldb.DB, FleetStats, error) {
	var normal, large []workload.Spec
	for _, s := range specs {
		if s.Queue == "largemem" {
			large = append(large, s)
		} else {
			normal = append(normal, s)
		}
	}
	db, stats, err := RunFleet(normal, chip.StampedeNode(), interval, seed, workers)
	if err != nil {
		return nil, stats, err
	}
	if len(large) > 0 {
		db2, stats2, err := RunFleet(large, chip.LargeMemNode(), interval, seed, workers)
		if err != nil {
			return nil, stats, err
		}
		db.Insert(db2.All()...)
		stats.Jobs += stats2.Jobs
		stats.Failed += stats2.Failed
		stats.CollectCost += stats2.CollectCost
		stats.NodeSeconds += stats2.NodeSeconds
	}
	return db, stats, nil
}
