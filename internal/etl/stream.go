package etl

import (
	"sort"

	"gostats/internal/core"
	"gostats/internal/model"
	"gostats/internal/reldb"
	"gostats/internal/schema"
	"gostats/internal/telemetry"
	"gostats/internal/trace"
)

// DefaultEndGrace is the grace window the batch driver uses: one
// canonical collection interval (the paper's 10-minute tick), long
// enough that every host's same-cycle samples land before the reduce.
const DefaultEndGrace = 600

// Assembler is the streaming job-run assembler at the heart of the
// incremental ETL: it consumes decoded snapshots as they arrive — from
// the live broker stream or a raw-store walk — and finalizes each job
// into a relational row the moment the stream says it is over, without
// ever materializing whole raw files.
//
// A job finalizes when:
//
//   - its "% end <id>" mark has been seen and the stream watermark (the
//     maximum snapshot time observed) has advanced past the end time by
//     EndGrace — the grace window lets straggler hosts of a multi-node
//     job flush their last samples before the row is reduced; or
//   - the watermark has advanced IdleTimeout past the job's last sample
//     with no end mark — the job's node died, or the scheduler never
//     delivered the epilog; cron mode would have carried such a job
//     forever, the streaming path closes it out.
//
// Both triggers are evaluated against stream time, not wall time, so a
// historical replay behaves identically to a live tail. Flush finalizes
// everything left (batch end-of-input).
//
// Not safe for concurrent use; the listener serializes messages anyway.
type Assembler struct {
	// Registry reduces each finalized job to Table I metrics.
	Registry *schema.Registry
	// Meta joins scheduler accounting onto finalized rows (may be nil:
	// rows then carry blank accounting, as in the batch path).
	Meta map[string]Meta
	// DB receives finalized rows.
	DB *reldb.DB
	// Journal, if set, appends every finalized row to the crash-safe
	// reldb journal the moment it exists — the durable system of record
	// that replaces save-on-a-timer. Append failures stick and surface
	// via Err.
	Journal *reldb.Journal

	// EndGrace is how far (stream seconds) the watermark must pass a
	// job's end mark before the row is reduced. Zero finalizes on the
	// first snapshot after the mark.
	EndGrace float64
	// IdleTimeout, when > 0, finalizes a job with no end mark once the
	// watermark is this far past its last sample.
	IdleTimeout float64

	// OnRow, if set, observes every finalized row (tests, metrics).
	OnRow func(*reldb.JobRow)

	// OnSnapshot, if set, observes every fed snapshot after it has been
	// folded in — the tap the online watch stage hangs off.
	OnSnapshot func(model.Snapshot)

	// Trace, if set, stamps the assemble hop on every fed snapshot.
	Trace *trace.Recorder

	// Metrics selects the telemetry registry; nil uses Default().
	Metrics *telemetry.Registry

	jobs      map[string]*jobState
	watermark float64
	ingested  []string
	skipped   int
	jnlErr    error
	met       *etlMetrics
}

// jobState is one in-flight job's accumulation.
type jobState struct {
	jd        *model.JobData
	begin     float64
	end       float64
	haveBegin bool
	haveEnd   bool
	lastSeen  float64 // max snapshot time labeled with this job
}

func (a *Assembler) init() {
	if a.jobs == nil {
		a.jobs = make(map[string]*jobState)
	}
	if a.met == nil {
		reg := a.Metrics
		if reg == nil {
			reg = telemetry.Default()
		}
		a.met = newETLMetrics(reg)
	}
}

func (a *Assembler) job(id string) *jobState {
	js := a.jobs[id]
	if js == nil {
		js = &jobState{jd: model.NewJobData(id)}
		a.jobs[id] = js
		a.met.jobsMapped.Inc()
	}
	return js
}

// Feed folds one snapshot into every job it is labeled with, records
// begin/end marks, advances the watermark, and finalizes any job whose
// trigger fired. Snapshots must arrive in globally non-decreasing time
// order for the idle trigger to be meaningful (Store.Walk and the live
// stream both provide this); out-of-order samples are still folded
// correctly, they just cannot un-fire a timeout.
func (a *Assembler) Feed(s model.Snapshot) {
	a.init()
	a.Trace.Stamp(&s, model.StageAssemble)
	for _, id := range s.JobIDs {
		js := a.job(id)
		h := js.jd.Host(s.Host)
		for _, r := range s.Records {
			h.Append(s.Time, r)
		}
		if s.Time > js.lastSeen {
			js.lastSeen = s.Time
		}
	}
	switch {
	case len(s.Mark) > 6 && s.Mark[:6] == "begin ":
		js := a.job(s.Mark[6:])
		js.begin, js.haveBegin = s.Time, true
	case len(s.Mark) > 4 && s.Mark[:4] == "end ":
		js := a.job(s.Mark[4:])
		js.end, js.haveEnd = s.Time, true
	}
	if s.Time > a.watermark {
		a.watermark = s.Time
	}
	a.sweep()
	if a.OnSnapshot != nil {
		a.OnSnapshot(s)
	}
}

// sweep finalizes every job whose end-mark or idle trigger has fired at
// the current watermark.
func (a *Assembler) sweep() {
	var due []string
	for id, js := range a.jobs {
		switch {
		case js.haveEnd && a.watermark >= js.end+a.EndGrace:
			due = append(due, id)
		case a.IdleTimeout > 0 && js.lastSeen > 0 &&
			a.watermark-js.lastSeen >= a.IdleTimeout:
			due = append(due, id)
		}
	}
	sort.Strings(due)
	for _, id := range due {
		a.finalize(id)
	}
}

// finalize reduces one job to its row, joins metadata, inserts, and
// forgets the accumulated state. Jobs too thin to reduce (a single
// sample — the node died between ticks) are dropped, as in the batch
// path.
func (a *Assembler) finalize(id string) {
	js := a.jobs[id]
	delete(a.jobs, id)
	sum, err := core.Compute(js.jd, a.Registry)
	if err != nil {
		a.skipped++
		return
	}
	row := &reldb.JobRow{JobID: id, Hosts: js.jd.HostNames(), Metrics: *sum}
	if js.haveBegin && js.haveEnd {
		row.StartTime, row.EndTime = js.begin, js.end
	} else {
		row.StartTime, row.EndTime = observedSpan(js.jd)
	}
	if md, ok := a.Meta[id]; ok {
		row.User, row.Account, row.Exe, row.JobName = md.User, md.Account, md.Exe, md.JobName
		row.Queue, row.Status = md.Queue, md.Status
		row.Nodes, row.Wayness = md.Nodes, md.Wayness
		row.SubmitTime = md.Submit
	}
	if row.Status == "" {
		row.Status = "RUNNING"
	}
	if row.Nodes == 0 {
		row.Nodes = len(js.jd.Hosts)
	}
	if a.DB != nil {
		a.DB.Insert(row)
	}
	// Once the journal has latched a write error, later rows can never
	// be made durable — stop appending so Err reflects the first loss
	// rather than burying it under repeats.
	if a.Journal != nil && a.jnlErr == nil {
		if err := a.Journal.Append(row); err != nil {
			a.jnlErr = err
		}
	}
	a.met.rowsIngested.Inc()
	a.ingested = append(a.ingested, id)
	if a.OnRow != nil {
		a.OnRow(row)
	}
}

// Flush finalizes every job still in flight, in sorted id order —
// end-of-input for a batch, or shutdown for a live tail.
func (a *Assembler) Flush() {
	a.init()
	ids := make([]string, 0, len(a.jobs))
	for id := range a.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		a.finalize(id)
	}
}

// Pending reports how many jobs are accumulating but not yet finalized.
func (a *Assembler) Pending() int { return len(a.jobs) }

// Err reports the first journal-append failure, if any — rows after it
// are still inserted in memory but the durable log is incomplete.
func (a *Assembler) Err() error { return a.jnlErr }

// IngestedIDs returns every finalized job id so far, sorted.
func (a *Assembler) IngestedIDs() []string {
	ids := append([]string(nil), a.ingested...)
	sort.Strings(ids)
	return ids
}

// Skipped reports jobs dropped because they were too thin to reduce.
func (a *Assembler) Skipped() int { return a.skipped }
