package etl

import (
	"testing"

	"gostats/internal/chip"
	"gostats/internal/cluster"
	"gostats/internal/collect"
	"gostats/internal/hwsim"
	"gostats/internal/rawfile"
	"gostats/internal/reldb"
	"gostats/internal/workload"
)

func spec(id string, nodes int, runtime float64) workload.Spec {
	return workload.Spec{
		JobID: id, User: "u1", Account: "TG-u1", Exe: "wrf.exe", JobName: "wrf",
		Queue: "normal", Nodes: nodes, Wayness: 16, Runtime: runtime,
		Status: workload.StatusCompleted,
		Model:  workload.Steady{Label: "wrf", P: workload.WRFProfile("u1")},
	}
}

func TestBuildRow(t *testing.T) {
	run, err := cluster.RunJob(spec("100", 2, 1800), chip.StampedeNode(), 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	row, err := BuildRow(run, chip.StampedeNode().Registry())
	if err != nil {
		t.Fatal(err)
	}
	if row.JobID != "100" || row.User != "u1" || row.Exe != "wrf.exe" {
		t.Errorf("row meta = %+v", row)
	}
	if row.RunTime() != 1800 {
		t.Errorf("runtime = %g", row.RunTime())
	}
	if row.Metrics.CPUUsage < 0.5 {
		t.Errorf("metrics look unpopulated: %+v", row.Metrics)
	}
	if len(row.Hosts) != 2 {
		t.Errorf("hosts = %v", row.Hosts)
	}
}

func TestRunFleetParallelDeterministic(t *testing.T) {
	specs := []workload.Spec{
		spec("1", 1, 1200), spec("2", 2, 1800), spec("3", 1, 900), spec("4", 4, 1500),
	}
	db1, st1, err := RunFleet(specs, chip.StampedeNode(), 600, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	db4, st4, err := RunFleet(specs, chip.StampedeNode(), 600, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Jobs != 4 || st4.Jobs != 4 || st1.Failed != 0 {
		t.Fatalf("stats = %+v / %+v", st1, st4)
	}
	for _, s := range specs {
		a, b := db1.Get(s.JobID), db4.Get(s.JobID)
		if a == nil || b == nil {
			t.Fatalf("job %s missing", s.JobID)
		}
		if a.Metrics.Flops != b.Metrics.Flops || a.Metrics.CPUUsage != b.Metrics.CPUUsage {
			t.Errorf("job %s metrics differ across worker counts", s.JobID)
		}
	}
	if st1.CollectCost <= 0 || st1.NodeSeconds <= 0 {
		t.Errorf("accounting empty: %+v", st1)
	}
}

func TestRunFleetCountsFailures(t *testing.T) {
	bad := workload.Spec{JobID: "bad"} // invalid: no nodes/model
	_, st, err := RunFleet([]workload.Spec{bad, spec("ok", 1, 900)}, chip.StampedeNode(), 600, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 1 || st.Failed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRunFleetMixedRoutesLargemem(t *testing.T) {
	lm := spec("big", 1, 900)
	lm.Queue = "largemem"
	p := workload.MemoryBound("u1", "big.x")
	p.MemBytes = 600 << 30
	lm.Model = workload.Steady{Label: "largemem", P: p}
	db, st, err := RunFleetMixed([]workload.Spec{spec("a", 1, 900), lm}, 600, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 2 {
		t.Fatalf("stats = %+v", st)
	}
	row := db.Get("big")
	if row == nil {
		t.Fatal("largemem job missing")
	}
	// A 600 GB footprint only fits on the 1 TB largemem node.
	if row.Metrics.MemUsage < 500<<30 {
		t.Errorf("largemem MemUsage = %g, want ~600 GiB", row.Metrics.MemUsage)
	}
}

func TestIngestStoreJoinsMetadata(t *testing.T) {
	st, err := rawfile.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := chip.StampedeNode()
	// Simulate cron-mode collection for one job on one node.
	n, err := hwsim.NewNode("c401-101", cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	col := collect.New(n)
	agent, err := collect.NewCronAgent(col, t.TempDir()+"/spool")
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Tick(1000, []string{"55"}, collect.JobMark(collect.MarkBegin, "55")); err != nil {
		t.Fatal(err)
	}
	n.Advance(600, hwsim.Demand{CPUUserFrac: 0.7, IPC: 1})
	if err := agent.Tick(1600, []string{"55"}, ""); err != nil {
		t.Fatal(err)
	}
	n.Advance(600, hwsim.Demand{CPUUserFrac: 0.7, IPC: 1})
	if err := agent.Tick(2200, []string{"55"}, collect.JobMark(collect.MarkEnd, "55")); err != nil {
		t.Fatal(err)
	}
	agent.Close()
	if err := st.SyncFrom("c401-101", agent.Logger.Dir()); err != nil {
		t.Fatal(err)
	}

	db := reldb.New()
	meta := map[string]Meta{"55": MetaFromSpec(spec("55", 1, 1200))}
	ids, err := IngestStore(st, cfg.Registry(), meta, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "55" {
		t.Fatalf("ingested = %v", ids)
	}
	row := db.Get("55")
	if row.User != "u1" || row.Exe != "wrf.exe" {
		t.Errorf("metadata not joined: %+v", row)
	}
	if row.StartTime != 1000 || row.EndTime != 2200 {
		t.Errorf("bounds = %g/%g", row.StartTime, row.EndTime)
	}
	if row.Metrics.CPUUsage < 0.5 {
		t.Errorf("metrics = %+v", row.Metrics)
	}
}

func TestIngestStoreWithoutMetadata(t *testing.T) {
	st, err := rawfile.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := chip.StampedeNode()
	n, _ := hwsim.NewNode("c1", cfg, 1)
	col := collect.New(n)
	s1, _ := col.Collect(0, []string{"9"}, "")
	n.Advance(600, hwsim.Demand{CPUUserFrac: 0.5, IPC: 1})
	s2, _ := col.Collect(600, []string{"9"}, "")
	h := col.Header()
	if err := st.AppendHost("c1", h, s1, s2); err != nil {
		t.Fatal(err)
	}
	db := reldb.New()
	ids, err := IngestStore(st, cfg.Registry(), nil, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("ingested = %v", ids)
	}
	row := db.Get("9")
	if row.Nodes != 1 {
		t.Errorf("nodes fallback = %d", row.Nodes)
	}
	if row.User != "" {
		t.Errorf("unexpected metadata: %+v", row)
	}
}

func TestDefaultNodeConfig(t *testing.T) {
	if DefaultNodeConfig("largemem").MemBytes != 1<<40 {
		t.Error("largemem queue not routed to largemem node")
	}
	if DefaultNodeConfig("normal").MemBytes != 32<<30 {
		t.Error("normal queue not routed to stampede node")
	}
}
