package etl

import (
	"reflect"
	"testing"

	"gostats/internal/chip"
	"gostats/internal/collect"
	"gostats/internal/hwsim"
	"gostats/internal/model"
	"gostats/internal/reldb"
)

// streamFixture collects a two-job stream on one simulated node: job 7
// runs ticks 0–1200 with begin/end marks; job 8 starts at 1800 and
// never ends (its node "dies").
func streamFixture(t *testing.T) []model.Snapshot {
	t.Helper()
	cfg := chip.StampedeNode()
	n, err := hwsim.NewNode("c1", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	col := collect.New(n)
	var snaps []model.Snapshot
	tick := func(at float64, jobs []string, mark string) {
		s, _ := col.Collect(at, jobs, mark)
		snaps = append(snaps, s)
	}
	tick(0, []string{"7"}, collect.JobMark(collect.MarkBegin, "7"))
	n.Advance(600, hwsim.Demand{CPUUserFrac: 0.6, IPC: 1})
	tick(600, []string{"7"}, "")
	n.Advance(600, hwsim.Demand{CPUUserFrac: 0.6, IPC: 1})
	tick(1200, []string{"7"}, collect.JobMark(collect.MarkEnd, "7"))
	n.Advance(600, hwsim.Demand{})
	tick(1800, []string{"8"}, collect.JobMark(collect.MarkBegin, "8"))
	n.Advance(600, hwsim.Demand{CPUUserFrac: 0.3, IPC: 1})
	tick(2400, []string{"8"}, "")
	n.Advance(600, hwsim.Demand{})
	tick(3000, nil, "")
	n.Advance(3600, hwsim.Demand{})
	tick(6600, nil, "")
	return snaps
}

// A job must finalize as soon as the watermark clears its end mark plus
// the grace window — not at Flush — and the row must match the batch
// reduction exactly.
func TestAssemblerFinalizesOnEndMark(t *testing.T) {
	snaps := streamFixture(t)
	reg := chip.StampedeNode().Registry()
	db := reldb.New()
	var rows []string
	a := &Assembler{Registry: reg, DB: db, EndGrace: 600,
		OnRow: func(r *reldb.JobRow) { rows = append(rows, r.JobID) }}
	for i, s := range snaps {
		a.Feed(s)
		// Job 7 ends at 1200; grace 600 means the t=1800 snapshot
		// (index 3) fires the reduce.
		if i < 3 && len(rows) != 0 {
			t.Fatalf("job finalized early at snapshot %d: %v", i, rows)
		}
	}
	if !reflect.DeepEqual(rows, []string{"7"}) {
		t.Fatalf("mid-stream finalized = %v, want [7]", rows)
	}
	row := db.Get("7")
	if row == nil || row.StartTime != 0 || row.EndTime != 1200 {
		t.Fatalf("row bounds = %+v", row)
	}
	if a.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (job 8 still open)", a.Pending())
	}
	a.Flush()
	if got := a.IngestedIDs(); !reflect.DeepEqual(got, []string{"7", "8"}) {
		t.Fatalf("ingested = %v", got)
	}
}

// A job with no end mark must finalize once the stream runs IdleTimeout
// past its last sample — stream time, not wall time.
func TestAssemblerIdleTimeout(t *testing.T) {
	snaps := streamFixture(t)
	reg := chip.StampedeNode().Registry()
	db := reldb.New()
	a := &Assembler{Registry: reg, DB: db, EndGrace: 600, IdleTimeout: 3600}
	for _, s := range snaps {
		a.Feed(s)
	}
	// Job 8's last sample is t=2400; the t=6600 snapshot puts the
	// watermark 4200 > 3600 past it, closing the job without a mark.
	if a.Pending() != 0 {
		t.Fatalf("pending = %d, want 0 after idle timeout", a.Pending())
	}
	row := db.Get("8")
	if row == nil {
		t.Fatal("idle job not ingested")
	}
	// No end mark: bounds fall back to the observed sample span.
	if row.StartTime != 1800 || row.EndTime != 2400 {
		t.Fatalf("idle job bounds = %g/%g", row.StartTime, row.EndTime)
	}
	if row.Status != "RUNNING" {
		t.Fatalf("status = %q", row.Status)
	}
}

// Feeding the assembler snapshot-by-snapshot must produce the same rows
// as the one-shot batch ingest over the same data.
func TestAssemblerMatchesBatchIngest(t *testing.T) {
	snaps := streamFixture(t)
	reg := chip.StampedeNode().Registry()

	streamDB := reldb.New()
	a := &Assembler{Registry: reg, DB: streamDB, EndGrace: DefaultEndGrace}
	for _, s := range snaps {
		a.Feed(s)
	}
	a.Flush()

	// Reference: a grace window past the end of input, so nothing
	// finalizes mid-stream and Flush reduces everything at once — the
	// old batch semantics.
	batchDB := reldb.New()
	b := &Assembler{Registry: reg, DB: batchDB, EndGrace: 1e18}
	for _, s := range snaps {
		b.Feed(s)
	}
	b.Flush()

	for _, id := range []string{"7", "8"} {
		sr, br := streamDB.Get(id), batchDB.Get(id)
		if sr == nil || br == nil {
			t.Fatalf("job %s missing (stream %v, batch %v)", id, sr != nil, br != nil)
		}
		if !reflect.DeepEqual(sr.Metrics, br.Metrics) {
			t.Errorf("job %s metrics differ:\nstream %+v\nbatch  %+v", id, sr.Metrics, br.Metrics)
		}
		if sr.StartTime != br.StartTime || sr.EndTime != br.EndTime {
			t.Errorf("job %s bounds differ: %g/%g vs %g/%g",
				id, sr.StartTime, sr.EndTime, br.StartTime, br.EndTime)
		}
	}
}
