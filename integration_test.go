package gostats

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"gostats/internal/acct"
	"gostats/internal/chip"
	"gostats/internal/cluster"
	"gostats/internal/collect"
	"gostats/internal/etl"
	"gostats/internal/flagging"
	"gostats/internal/hwsim"
	"gostats/internal/jobmap"
	"gostats/internal/lustresim"
	"gostats/internal/model"
	"gostats/internal/portal"
	"gostats/internal/rawfile"
	"gostats/internal/reldb"
	"gostats/internal/report"
	"gostats/internal/workload"
	"gostats/internal/xalt"
)

// TestEndToEndCronDeployment drives the whole Fig 1 deployment in one
// test: a cluster with a shared filesystem runs a mixed day of jobs under
// cron-mode collection; spools rsync to the central store; the ETL maps,
// reduces and joins accounting metadata; the portal serves the result;
// and the consulting report renders with targeted advice.
func TestEndToEndCronDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end deployment test skipped in -short mode")
	}
	tmp := t.TempDir()
	store, err := rawfile.NewStore(filepath.Join(tmp, "central"))
	if err != nil {
		t.Fatal(err)
	}

	eng, err := cluster.NewEngine(8, chip.StampedeNode(), 600, 21)
	if err != nil {
		t.Fatal(err)
	}
	eng.FS = lustresim.New(lustresim.DefaultConfig())
	spoolOf := func(host string) string { return filepath.Join(tmp, "spool", host) }
	eng.NewSink = func(n *hwsim.Node, col *collect.Collector) (cluster.Sink, error) {
		logger, err := rawfile.NewNodeLogger(spoolOf(n.Host()), col.Header())
		if err != nil {
			return nil, err
		}
		return &loggerSink{logger}, nil
	}
	eng.SyncHook = func(host string, now float64) error {
		return store.SyncFrom(host, spoolOf(host))
	}

	// Accounting + XALT capture on job end, as the scheduler would.
	var acctBuf strings.Builder
	acctW := acct.NewWriter(&acctBuf)
	xdb := xalt.NewDB()
	eng.OnJobEnd = func(spec workload.Spec, start, end float64, hosts []string) error {
		if err := xdb.Put(xalt.Capture(spec.JobID, spec.Exe, spec.User, false, 21)); err != nil {
			return err
		}
		return acctW.Append(acct.FromSpec(spec, start, end, hosts))
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	// A clean job, a metadata storm, and an idle-node job.
	mk := func(id, user string, m workload.Model, nodes int) workload.Spec {
		return workload.Spec{
			JobID: id, User: user, Exe: "wrf.exe", Queue: "normal",
			Nodes: nodes, Wayness: 16, Runtime: 3 * 3600,
			Status: workload.StatusCompleted, Model: m,
		}
	}
	eng.Submit(
		mk("clean", "u100", workload.Steady{Label: "wrf", P: workload.WRFProfile("u100")}, 2),
		mk("storm", "u042", workload.PathologicalWRF("u042"), 2),
		mk("halfidle", "u200", workload.IdleNodes{
			Inner: workload.Steady{Label: "v", P: workload.VectorizedCompute("u200", "a.out", 0.8)},
			Idle:  1,
		}, 2),
	)
	if err := eng.Run(86400); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if eng.Finished != 3 {
		t.Fatalf("finished = %d", eng.Finished)
	}
	for _, host := range eng.Nodes() {
		if err := store.SyncFrom(host, spoolOf(host)); err != nil {
			t.Fatal(err)
		}
	}

	// ETL with the accounting join.
	recs, err := acct.Parse(strings.NewReader(acctBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("accounting records = %d", len(recs))
	}
	meta := map[string]etl.Meta{}
	for _, r := range recs {
		meta[r.JobID] = etl.MetaFromAcct(r)
	}
	db := reldb.New()
	reg := chip.StampedeNode().Registry()
	ids, err := etl.IngestStore(store, reg, meta, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ingested = %v", ids)
	}

	// The metrics tell the right stories.
	storm := db.Get("storm")
	if storm.User != "u042" {
		t.Errorf("acct join failed: %+v", storm)
	}
	if storm.Metrics.MetaDataRate < 1e5 {
		t.Errorf("storm MetaDataRate = %g", storm.Metrics.MetaDataRate)
	}
	clean := db.Get("clean")
	if clean.Metrics.CPUUsage < 0.7 {
		t.Errorf("clean CPU = %g", clean.Metrics.CPUUsage)
	}
	// The clean job shares the MDS with the storm: its metadata waits
	// must exceed the unloaded baseline (emergent interference).
	if clean.Metrics.MDCWait <= lustresim.DefaultConfig().BaseMDSWaitUs {
		t.Errorf("clean MDCWait = %g, want interference above %g",
			clean.Metrics.MDCWait, lustresim.DefaultConfig().BaseMDSWaitUs)
	}
	half := db.Get("halfidle")
	if half.Metrics.Idle > 0.1 {
		t.Errorf("halfidle Idle = %g", half.Metrics.Idle)
	}

	// Flag sweep finds both pathologies.
	rep, err := flagging.Sweep(db, flagging.Default(flagging.DefaultThresholds()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ByJob["storm"]) == 0 || len(rep.ByJob["halfidle"]) == 0 {
		t.Errorf("flags = %+v", rep.ByJob)
	}

	// The portal serves it all, with Fig 5 plots from the raw archive.
	series := func(jobID string) (*model.JobData, error) {
		m, err := jobmap.FromStore(store)
		if err != nil {
			return nil, err
		}
		return m.Jobs()[jobID], nil
	}
	srv := portal.NewServer(db, reg, series)
	srv.XALT = xdb
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := httpGet(t, ts.URL+"/jobs?exe=wrf.exe")
	if !strings.Contains(body, "3 jobs match") || !strings.Contains(body, "high_metadata_rate") {
		t.Errorf("portal jobs page wrong:\n%s", body[:200])
	}
	detail := httpGet(t, ts.URL+"/job/storm")
	for _, want := range []string{"Per-node time series", "Environment (XALT)", "FAIL"} {
		if !strings.Contains(detail, want) {
			t.Errorf("detail page missing %q", want)
		}
	}

	// And the consulting report gives the §V-B advice.
	xrec, _ := xdb.Get("storm")
	text := report.Job(storm, flagging.Default(flagging.DefaultThresholds()), &xrec)
	if !strings.Contains(text, "open files once") {
		t.Errorf("report missing targeted advice:\n%s", text)
	}
}

type loggerSink struct{ logger *rawfile.NodeLogger }

func (s *loggerSink) Handle(snap model.Snapshot) error { return s.logger.Log(snap) }
func (s *loggerSink) Close() error                     { return s.logger.Close() }

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
