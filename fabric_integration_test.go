package gostats

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gostats/internal/broker"
	"gostats/internal/chip"
	"gostats/internal/collect"
	"gostats/internal/fabric"
	"gostats/internal/hwsim"
	"gostats/internal/model"
	"gostats/internal/rawfile"
	"gostats/internal/realtime"
	"gostats/internal/spool"
	"gostats/internal/telemetry"
)

// TestChaosBrokerKillRebalancesAndConserves drives the full partitioned
// fabric — collectors -> replicated publisher -> three brokers ->
// partition-group consumer -> store — and kills the busiest broker
// outright in the middle of the run. The invariants under test are the
// fabric's robustness guarantees: the partition map rebalances live
// (version bump, dead broker out of every owner set), every emitted
// snapshot is archived or still spooled, and the (host, sequence) dedup
// keeps replicated delivery invisible — zero duplicates reach the
// archive.
func TestChaosBrokerKillRebalancesAndConserves(t *testing.T) {
	reg := telemetry.NewRegistry()
	pol := broker.Policy{
		MaxAttempts:      2,
		DialTimeout:      time.Second,
		BackoffMin:       time.Millisecond,
		BackoffMax:       10 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerWindow:    25 * time.Millisecond,
		BreakerMaxWindow: 100 * time.Millisecond,
	}

	const nBrokers = 3
	srvs := make([]*broker.Server, nBrokers)
	addrs := make([]string, nBrokers)
	for i := range srvs {
		srvs[i] = broker.NewServer()
		addr, err := srvs[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		defer srvs[i].Close()
	}
	m := fabric.NewMap(addrs, 8, 2)
	view := fabric.NewView(m, pol, reg)
	for _, s := range srvs {
		s.MapProvider = view.Provider()
	}

	// The victim owns the most partitions as primary — the worst single
	// loss the map allows.
	victim := 0
	counts := m.PrimaryCount()
	for i, a := range addrs {
		if counts[a] > counts[addrs[victim]] {
			victim = i
		}
	}

	cfg := chip.StampedeNode()
	pool := fabric.NewClientPool(pol)
	pub := fabric.NewPublisher(view, pool)
	pub.Registry = cfg.Registry()
	pub.Metrics = reg
	defer pub.Close()

	const (
		nNodes   = 3
		ticks    = 12
		killTick = 4
		interval = 600.0
	)
	type nodeRT struct {
		daemon *collect.DaemonAgent
		node   *hwsim.Node
	}
	nodes := make([]*nodeRT, nNodes)
	for i := range nodes {
		hw, err := hwsim.NewNode(fmt.Sprintf("c401-%03d", i+1), cfg, int64(30+i))
		if err != nil {
			t.Fatal(err)
		}
		col := collect.New(hw)
		col.Metrics = reg
		if i == 0 {
			// One shared spool backs the shared publisher; the snapshots
			// inside carry their own hosts.
			sp, err := spool.Open(filepath.Join(t.TempDir(), "spool"), col.Header(),
				spool.Options{Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			pub.AttachSpool(sp)
			defer sp.Close()
		}
		nodes[i] = &nodeRT{daemon: collect.NewDaemonAgent(col, pub), node: hw}
	}

	// Partition-group consumer feeding the central archiver, recording
	// every first occurrence and flagging anything dedup let through.
	store, err := rawfile.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	collected := map[string]bool{}
	duplicates := 0
	l := &realtime.Listener{
		Monitor: realtime.NewMonitor(cfg.Registry(), realtime.DefaultRules()),
		Store:   store,
		Metrics: reg,
		Headers: func(host string) rawfile.Header {
			return rawfile.Header{Hostname: host, Arch: "sandybridge", Registry: cfg.Registry()}
		},
		OnSnapshot: func(s model.Snapshot) {
			mu.Lock()
			defer mu.Unlock()
			k := fmt.Sprintf("%s@%.3f", s.Host, s.Time)
			if collected[k] {
				duplicates++
				return
			}
			collected[k] = true
		},
	}
	g := fabric.NewGroup(view)
	g.Handle = l.HandleBody
	g.Metrics = reg
	g.Logf = t.Logf
	g.Start()
	defer g.Stop()

	emitted := map[string]bool{}
	now := 0.0
	for tick := 0; tick < ticks; tick++ {
		if tick == killTick {
			if err := srvs[victim].Close(); err != nil {
				t.Fatal(err)
			}
		}
		now += interval
		for _, rt := range nodes {
			rt.node.Advance(interval, hwsim.Demand{CPUUserFrac: 0.4, IPC: 1})
			// Tick must never fail: with a dead owner the snapshot fails
			// over to the rebalanced owner set or goes to the spool, not
			// to the floor.
			if err := rt.daemon.Tick(now, []string{"42"}, ""); err != nil {
				t.Fatalf("tick %d: %v", tick, err)
			}
			emitted[fmt.Sprintf("%s@%.3f", rt.node.Host(), now)] = true
		}
	}

	// Whatever the kill stranded must replay to the survivors, and the
	// group must archive every distinct snapshot.
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := pub.Stats()
		mu.Lock()
		got := len(collected)
		mu.Unlock()
		if st.Spooled == st.Replayed+st.Dropped && got >= len(emitted) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("archived %d of %d snapshots before timeout (publisher %+v)", got, len(emitted), st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	for k := range emitted {
		if !collected[k] {
			t.Errorf("snapshot %s lost", k)
		}
	}
	if duplicates != 0 {
		t.Errorf("%d duplicate snapshots got past (host, seq) dedup", duplicates)
	}

	// The kill must have rebalanced the map: version bumped and the dead
	// broker out of every partition's owner set.
	cur := view.Snapshot()
	if cur.Version < 2 {
		t.Errorf("map version = %d after broker kill, want a rebalance bump", cur.Version)
	}
	if !cur.IsDead(addrs[victim]) {
		t.Errorf("killed broker %s not marked dead in the map", addrs[victim])
	}
	for p := 0; p < cur.Partitions; p++ {
		for _, o := range cur.Owners(p) {
			if o == addrs[victim] {
				t.Errorf("partition %d still owned by killed broker %s", p, o)
			}
		}
	}

	pst := pub.Stats()
	if pst.Dropped != 0 {
		t.Errorf("publisher dropped %d snapshots: %+v", pst.Dropped, pst)
	}
	gst := g.Stats()
	if gst.Deduped == 0 {
		t.Errorf("replication factor 2 delivered no duplicate frames to dedup: %+v", gst)
	}
	if gst.Handled != uint64(len(collected)) {
		t.Errorf("group handled %d frames but %d snapshots archived", gst.Handled, len(collected))
	}
}
