// Root benchmark harness: one benchmark per paper table/figure (the E*
// ids of DESIGN.md §4), plus ablation benchmarks for the design choices
// DESIGN.md §6 calls out. Run with:
//
//	go test -bench=. -benchmem .
package gostats

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gostats/internal/analysis"
	"gostats/internal/broker"
	"gostats/internal/chip"
	"gostats/internal/cluster"
	"gostats/internal/codec"
	"gostats/internal/collect"
	"gostats/internal/core"
	"gostats/internal/etl"
	"gostats/internal/experiments"
	"gostats/internal/hwsim"
	"gostats/internal/model"
	"gostats/internal/pipeline"
	"gostats/internal/portal"
	"gostats/internal/preload"
	"gostats/internal/rawfile"
	"gostats/internal/reldb"
	"gostats/internal/schema"
	"gostats/internal/segstore"
	"gostats/internal/telemetry"
	"gostats/internal/tsdb"
	"gostats/internal/workload"
)

// ---- shared fixtures (built once, reused across benchmarks) ----

var fixOnce sync.Once
var fix struct {
	cfg     chip.NodeConfig
	reg     *schema.Registry
	run     *cluster.JobRun // reference 4-node job
	jobData *model.JobData
	fleetDB *reldb.DB // 250-job population
	wrfDB   *reldb.DB // WRF window population
	tsdb    *tsdb.DB
}

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		fix.cfg = chip.StampedeNode()
		fix.reg = fix.cfg.Registry()
		spec := workload.Spec{
			JobID: "bench-ref", User: "u001", Exe: "wrf.exe", Queue: "normal",
			Nodes: 4, Wayness: 16, Runtime: 4 * 3600,
			Status: workload.StatusCompleted,
			Model:  workload.Steady{Label: "wrf", P: workload.WRFProfile("u001")},
		}
		run, err := cluster.RunJob(spec, fix.cfg, 600, 1)
		if err != nil {
			panic(err)
		}
		fix.run = run
		fix.jobData = run.JobData()

		fleet := workload.GenerateFleet(workload.FleetOpts{Seed: 3, Jobs: 250, SpanSec: 90 * 86400})
		db, _, err := etl.RunFleetMixed(fleet, 600, 3, 0)
		if err != nil {
			panic(err)
		}
		fix.fleetDB = db

		wrf := workload.GenerateWRF(workload.WRFOpts{Seed: 5, Jobs: 80, PathoJobs: 2, PathoUser: "u042", SpanSec: 13 * 86400})
		wdb, _, err := etl.RunFleetMixed(wrf, 600, 5, 0)
		if err != nil {
			panic(err)
		}
		fix.wrfDB = wdb

		// TSDB loaded with the reference job's stream.
		tdb := tsdb.New()
		ing := tsdb.NewIngester(tdb, fix.reg)
		for _, s := range run.Snapshots {
			ing.Ingest(s)
		}
		fix.tsdb = tdb
	})
}

// ---- E1: Table I ----

// BenchmarkTableIMetrics measures the metric engine reducing a 4-node,
// 4-hour job to its full Table I summary.
func BenchmarkTableIMetrics(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compute(fix.jobData, fix.reg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E2: collection cost / overhead ----

// BenchmarkCollection measures one full device sweep on a Stampede node
// (the real Go cost backing the simulated ~0.09 s budget).
func BenchmarkCollection(b *testing.B) {
	fixtures(b)
	n, err := hwsim.NewNode("bench", fix.cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	n.Advance(600, hwsim.Demand{CPUUserFrac: 0.8, IPC: 1.2})
	col := collect.New(n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		col.Collect(float64(i), []string{"1"}, "")
	}
}

// ---- E3: cron pipeline ----

// BenchmarkCronPipeline measures the node-local log append (collection
// included), the per-snapshot cost of Fig 1's first stage.
func BenchmarkCronPipeline(b *testing.B) {
	fixtures(b)
	n, err := hwsim.NewNode("bench", fix.cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	col := collect.New(n)
	agent, err := collect.NewCronAgent(col, b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer agent.Close()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Advance(600, hwsim.Demand{CPUUserFrac: 0.8, IPC: 1.2})
		if err := agent.Tick(float64(i)*600, []string{"1"}, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E4: daemon pipeline ----

// BenchmarkDaemonPipeline measures the broker round trip: collect,
// publish over TCP, consume and decode — Fig 2's per-snapshot cost.
func BenchmarkDaemonPipeline(b *testing.B) {
	fixtures(b)
	srv := broker.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := broker.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	cons, err := broker.DialConsumer(addr, broker.StatsQueue)
	if err != nil {
		b.Fatal(err)
	}
	defer cons.Close()

	n, err := hwsim.NewNode("bench", fix.cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	agent := collect.NewDaemonAgent(collect.New(n), broker.SnapshotPublisher{C: client})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			body, err := cons.Next()
			if err != nil {
				return
			}
			if _, err := broker.DecodeSnapshot(body); err != nil {
				return
			}
		}
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Advance(600, hwsim.Demand{CPUUserFrac: 0.8, IPC: 1.2})
		if err := agent.Tick(float64(i)*600, []string{"1"}, ""); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	srv.Close()
	<-done
}

// ---- E5: portal query ----

// BenchmarkPortalQuery measures the Fig 3 search over HTTP, including
// filter parsing and the JSON projection.
func BenchmarkPortalQuery(b *testing.B) {
	fixtures(b)
	srv := httptest.NewServer(portal.NewServer(fix.wrfDB, fix.reg, nil))
	defer srv.Close()
	url := srv.URL + "/api/jobs?exe=wrf.exe&field1=runtime&op1=gte&val1=600"
	b.ReportAllocs()
	b.ResetTimer() // fixtures(b) may have just built the fleet
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != 200 {
			b.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// ---- E6: histogram generation ----

// BenchmarkHistogramQuery measures the Fig 4 quartet over the WRF window.
func BenchmarkHistogramQuery(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Histograms(fix.wrfDB, 20, reldb.F("exe", "wrf.exe")); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E7: job detail page ----

// BenchmarkJobDetail measures assembling the six Fig 5 panels and
// rendering them to SVG.
func BenchmarkJobDetail(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		js, err := core.TimeSeries(fix.jobData, fix.reg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range js.Panels {
			if svg := portal.PanelSVG(p); len(svg) == 0 {
				b.Fatal("empty svg")
			}
		}
	}
}

// ---- E8: case study aggregation ----

// BenchmarkCaseStudy measures the §V-B user-vs-population aggregation.
func BenchmarkCaseStudy(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.WRFStudy(fix.wrfDB, "wrf.exe", "u042"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E9: correlation study ----

// BenchmarkCorrelations measures the production-population correlation
// study.
func BenchmarkCorrelations(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.IOCorrelations(fix.fleetDB, analysis.ProductionFilters()...); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E10: population survey ----

// BenchmarkPopulationSurvey measures the §V-A fleet characterization.
func BenchmarkPopulationSurvey(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.PopulationSurvey(fix.fleetDB); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E11: TSDB query ----

// BenchmarkTSDBQuery measures a tag-filtered, host-aggregated range
// query over the reference job's stream.
func BenchmarkTSDBQuery(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fix.tsdb.Do(tsdb.Query{DevType: "mdc", Event: "reqs", Aggregate: tsdb.Sum})
		if err != nil || len(res) == 0 {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

// ---- E12: shared-node signal handling ----

// BenchmarkSharedNode measures the per-signal cost of the §VI-C tracker.
func BenchmarkSharedNode(b *testing.B) {
	fixtures(b)
	n, err := hwsim.NewNode("bench", fix.cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	col := collect.New(n)
	tr := preload.NewTracker(col, nil)
	tr.JobStart(0, "1")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Signal(float64(i)*10+100, preload.ProcExec)
	}
}

// ---- End-to-end throughput ----

// BenchmarkFleetSimulation measures whole-pipeline throughput: simulate
// a job, collect it, compute its metrics, build its row.
func BenchmarkFleetSimulation(b *testing.B) {
	fixtures(b)
	specs := workload.GenerateFleet(workload.FleetOpts{Seed: 9, Jobs: 64})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec := specs[i%len(specs)]
		spec.Runtime = 3600 // bound the per-iteration work
		if spec.Nodes > 8 {
			spec.Nodes = 8
		}
		run, err := cluster.RunJob(spec, fix.cfg, 600, 9)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := etl.BuildRow(run, fix.reg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentSuite runs the entire E1-E12 suite at small scale —
// the one-button reproduction.
func BenchmarkExperimentSuite(b *testing.B) {
	if testing.Short() {
		b.Skip("long")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.All(experiments.Small()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E13: concurrent portal load (PR 4 read path) ----

// BenchmarkPortalJobsConcurrent measures the full /jobs page — filter
// scan, Fig 4 histogram quartet, flag sublist, HTML render — under
// parallel clients on the 250-job fleet fixture. The "cold" variant
// disables the response cache (every request renders); "cached" is the
// production configuration. Pre-PR4 baseline: 3,997,027 ns/op.
func BenchmarkPortalJobsConcurrent(b *testing.B) {
	fixtures(b)
	urls := []string{
		"/jobs?field1=runtime&op1=gte&val1=600",
		"/jobs?queue=normal&field1=cpu_usage&op1=gte&val1=0.5",
		"/jobs?field1=metadatarate&op1=gte&val1=1000",
		"/jobs?status=COMPLETED",
	}
	run := func(b *testing.B, useCache bool) {
		ps := portal.NewServer(fix.fleetDB, fix.reg, nil)
		ps.Metrics = telemetry.NewRegistry()
		if !useCache {
			ps.Cache = nil
		}
		srv := httptest.NewServer(ps)
		defer srv.Close()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				resp, err := http.Get(srv.URL + urls[i%len(urls)])
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != 200 {
					b.Fatalf("status %d", resp.StatusCode)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				i++
			}
		})
	}
	b.Run("cold", func(b *testing.B) { run(b, false) })
	b.Run("cached", func(b *testing.B) { run(b, true) })
}

// BenchmarkReldbStats compares the single-pass multi-field Stats sweep
// against the one-Query-per-field projection it replaced.
func BenchmarkReldbStats(b *testing.B) {
	fixtures(b)
	fields := []string{"runtime", "nodes", "waittime", "metadatarate"}
	filter := reldb.F("status", "COMPLETED")
	b.Run("single-pass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fix.fleetDB.Stats(fields, filter); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-field-scans", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, f := range fields {
				if _, err := fix.fleetDB.Values(f, filter); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkTSDBGroupedDownsample measures the grouped, downsampled
// aggregation path (flat-slice accumulator) over a many-series store.
func BenchmarkTSDBGroupedDownsample(b *testing.B) {
	db := tsdb.New()
	for h := 0; h < 64; h++ {
		tags := tsdb.Tags{Host: fmt.Sprintf("n%03d", h), DevType: "mdc", Device: "m0", Event: "reqs"}
		for t := 0; t < 200; t++ {
			db.Put(tags, float64(t*60), float64(t%17))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Do(tsdb.Query{DevType: "mdc", Event: "reqs",
			GroupBy: []string{"host"}, Downsample: 600, Aggregate: tsdb.Avg})
		if err != nil || len(res) != 64 {
			b.Fatalf("res=%d err=%v", len(res), err)
		}
	}
}

// BenchmarkTSDBPutParallel measures ingest throughput with many
// concurrent writers — the contention case sharding addresses.
func BenchmarkTSDBPutParallel(b *testing.B) {
	db := tsdb.New()
	var hostSeq atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		h := hostSeq.Add(1)
		tags := tsdb.Tags{Host: fmt.Sprintf("n%03d", h), DevType: "cpu", Device: "0", Event: "user"}
		t := 0.0
		for pb.Next() {
			db.Put(tags, t, 1)
			t += 600
		}
	})
}

// ---- Ablations (DESIGN.md §6) ----

// BenchmarkDeltaDecodeRollover vs BenchmarkDeltaDecodeNaive: the cost of
// rollover-aware decoding against naive subtraction.
func BenchmarkDeltaDecodeRollover(b *testing.B) {
	def := schema.EventDef{Name: "x", Kind: schema.Event, Width: 48}
	prev, cur := uint64(1<<48)-5000, uint64(12345)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += schema.RolloverDelta(prev, cur, def)
	}
	_ = sink
}

func BenchmarkDeltaDecodeNaive(b *testing.B) {
	prev, cur := uint64(1000), uint64(2000)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += cur - prev
	}
	_ = sink
}

// BenchmarkBrokerBatching compares one-snapshot-per-message against
// one-record-per-message publishing (the design choice behind publishing
// whole sweeps).
func BenchmarkBrokerBatching(b *testing.B) {
	fixtures(b)
	n, err := hwsim.NewNode("bench", fix.cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	n.Advance(600, hwsim.Demand{CPUUserFrac: 0.8, IPC: 1.2})
	snap, _ := collect.New(n).Collect(600, []string{"1"}, "")

	run := func(b *testing.B, publish func(pub *broker.Client) error, expect func(cons *broker.Consumer) error) {
		srv := broker.NewServer()
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		pub, err := broker.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer pub.Close()
		cons, err := broker.DialConsumer(addr, broker.StatsQueue)
		if err != nil {
			b.Fatal(err)
		}
		defer cons.Close()
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := publish(pub); err != nil {
				b.Fatal(err)
			}
			if err := expect(cons); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("snapshot-per-message", func(b *testing.B) {
		body, err := broker.EncodeSnapshot(snap)
		if err != nil {
			b.Fatal(err)
		}
		run(b,
			func(pub *broker.Client) error { return pub.Publish(broker.StatsQueue, body) },
			func(cons *broker.Consumer) error { _, err := cons.Next(); return err })
	})
	b.Run("record-per-message", func(b *testing.B) {
		bodies := make([][]byte, len(snap.Records))
		for i, r := range snap.Records {
			one := model.Snapshot{Time: snap.Time, Host: snap.Host, JobIDs: snap.JobIDs,
				Records: []model.Record{r}}
			body, err := broker.EncodeSnapshot(one)
			if err != nil {
				b.Fatal(err)
			}
			bodies[i] = body
		}
		run(b,
			func(pub *broker.Client) error {
				for _, body := range bodies {
					if err := pub.Publish(broker.StatsQueue, body); err != nil {
						return err
					}
				}
				return nil
			},
			func(cons *broker.Consumer) error {
				for range bodies {
					if _, err := cons.Next(); err != nil {
						return err
					}
				}
				return nil
			})
	})
}

// BenchmarkQueryIndexVsScan compares a threshold query with and without
// the sorted secondary index.
func BenchmarkQueryIndexVsScan(b *testing.B) {
	mkdb := func() *reldb.DB {
		db := reldb.New()
		for i := 0; i < 20000; i++ {
			db.Insert(&reldb.JobRow{
				JobID: fmt.Sprint(i), User: "u", Exe: "x", Queue: "normal", Status: "COMPLETED",
				Nodes: 2, StartTime: 0, EndTime: float64(600 + i),
				Metrics: core.Summary{MetaDataRate: float64(i % 10000)},
			})
		}
		return db
	}
	filter := reldb.F("metadatarate__gte", 9990.0)
	b.Run("scan", func(b *testing.B) {
		db := mkdb()
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := db.Query(filter)
			if err != nil || len(rows) == 0 {
				b.Fatalf("rows=%d err=%v", len(rows), err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		db := mkdb()
		if err := db.CreateIndex("metadatarate"); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Query(filter); err != nil { // build the index
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := db.Query(filter)
			if err != nil || len(rows) == 0 {
				b.Fatalf("rows=%d err=%v", len(rows), err)
			}
		}
	})
}

// BenchmarkTSDBIndex compares a tag-filtered query (posting-list lookup)
// against a wildcard query (series scan) on a many-series database.
func BenchmarkTSDBIndex(b *testing.B) {
	db := tsdb.New()
	for h := 0; h < 200; h++ {
		for e := 0; e < 10; e++ {
			tags := tsdb.Tags{Host: fmt.Sprintf("n%03d", h), DevType: "cpu",
				Device: "0", Event: fmt.Sprintf("ev%d", e)}
			for t := 0; t < 20; t++ {
				db.Put(tags, float64(t*600), float64(t))
			}
		}
	}
	b.Run("tag-filtered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := db.Do(tsdb.Query{Host: "n017", Event: "ev3", Aggregate: tsdb.Sum})
			if err != nil || len(res) != 1 {
				b.Fatalf("res=%d err=%v", len(res), err)
			}
		}
	})
	b.Run("wildcard-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := db.Do(tsdb.Query{Event: "ev3", Aggregate: tsdb.Sum})
			if err != nil || len(res) != 1 {
				b.Fatalf("res=%d err=%v", len(res), err)
			}
		}
	})
}

// BenchmarkRawfileRoundTrip measures the text format: write plus parse of
// one full-sweep snapshot.
func BenchmarkRawfileRoundTrip(b *testing.B) {
	fixtures(b)
	n, err := hwsim.NewNode("bench", fix.cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	n.Advance(600, hwsim.Demand{CPUUserFrac: 0.8, IPC: 1.2})
	snap, _ := collect.New(n).Collect(600, []string{"1"}, "")
	header := rawfile.Header{Hostname: "bench", Arch: "sandybridge", Registry: fix.reg}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := rawfile.NewWriter(&buf, header)
		if err := w.WriteSnapshot(snap); err != nil {
			b.Fatal(err)
		}
		if _, err := rawfile.Parse(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- PR5: versioned snapshot codec + streaming ingest ----

// codecBenchStream returns the reference job's snapshot stream for one
// host — a realistic full-registry sequence whose counters advance
// monotonically, which is exactly what the binary codec's delta
// encoding is shaped for.
func codecBenchStream(b *testing.B) ([]model.Snapshot, codec.Header) {
	fixtures(b)
	var snaps []model.Snapshot
	for _, s := range fix.run.Snapshots {
		if s.Host == fix.run.Hosts[0] {
			snaps = append(snaps, s)
		}
	}
	if len(snaps) == 0 {
		b.Fatal("no snapshots for reference host")
	}
	return snaps, codec.Header{Hostname: fix.run.Hosts[0], Arch: "sandybridge", Registry: fix.reg}
}

// BenchmarkSnapshotCodec measures encode and decode of one host-day
// stream in each codec, reporting bytes per snapshot alongside speed —
// the size/CPU trade the -codec flag selects.
func BenchmarkSnapshotCodec(b *testing.B) {
	snaps, header := codecBenchStream(b)
	for _, v := range []codec.Version{codec.V1Text, codec.V2Binary} {
		var ref bytes.Buffer
		enc, err := codec.NewEncoder(&ref, header, v)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range snaps {
			if err := enc.WriteSnapshot(s); err != nil {
				b.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			b.Fatal(err)
		}
		perSnap := float64(ref.Len()) / float64(len(snaps))

		b.Run(v.String()+"/encode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				enc, _ := codec.NewEncoder(&buf, header, v)
				for _, s := range snaps {
					if err := enc.WriteSnapshot(s); err != nil {
						b.Fatal(err)
					}
				}
				enc.Flush()
			}
			b.ReportMetric(perSnap, "bytes/snap")
			b.ReportMetric(float64(len(snaps))*float64(b.N)/b.Elapsed().Seconds(), "snaps/s")
		})
		b.Run(v.String()+"/decode", func(b *testing.B) {
			b.ReportAllocs()
			data := ref.Bytes()
			for i := 0; i < b.N; i++ {
				st, err := codec.DecodeAll(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				if len(st.Snapshots) != len(snaps) {
					b.Fatalf("decoded %d of %d", len(st.Snapshots), len(snaps))
				}
			}
			b.ReportMetric(perSnap, "bytes/snap")
			b.ReportMetric(float64(len(snaps))*float64(b.N)/b.Elapsed().Seconds(), "snaps/s")
		})
	}
}

// BenchmarkWireCodec measures one self-contained broker message per
// snapshot — encode plus decode — for the legacy gob framing and both
// versioned codecs, reporting the per-message wire size.
func BenchmarkWireCodec(b *testing.B) {
	snaps, _ := codecBenchStream(b)
	s := snaps[len(snaps)/2]
	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		body, err := broker.EncodeSnapshot(s)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			body, err = broker.EncodeSnapshot(s)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := broker.DecodeSnapshot(body); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(body)), "bytes/snap")
	})
	for _, v := range []codec.Version{codec.V1Text, codec.V2Binary} {
		b.Run(v.String(), func(b *testing.B) {
			b.ReportAllocs()
			body, err := codec.EncodeWire(s, fix.reg, v)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				body, err = codec.EncodeWire(s, fix.reg, v)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := codec.DecodeWire(body, fix.reg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(body)), "bytes/snap")
		})
	}
}

// BenchmarkStreamIngest is the end-to-end write path per codec: every
// snapshot of the fixture run is archived into a fresh raw store (the
// listend write side) and the store is then walked snapshot-by-snapshot
// through the streaming assembler into job rows (the ETL read side).
// The binary/text throughput ratio here is the whole-pipeline payoff of
// the v2 codec: smaller frames to format on the way in and fewer bytes
// to parse on the way out.
func BenchmarkStreamIngest(b *testing.B) {
	fixtures(b)
	for _, v := range []codec.Version{codec.V1Text, codec.V2Binary} {
		b.Run(v.String(), func(b *testing.B) {
			base := b.TempDir()
			var lastDir string
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lastDir = filepath.Join(base, strconv.Itoa(i))
				st, err := rawfile.NewStore(lastDir)
				if err != nil {
					b.Fatal(err)
				}
				st.SetCodec(v)
				arch := rawfile.NewArchiver(st, 0)
				for _, s := range fix.run.Snapshots {
					h := rawfile.Header{Hostname: s.Host, Arch: "sandybridge", Registry: fix.reg}
					if err := arch.Append(s.Host, h, s); err != nil {
						b.Fatal(err)
					}
				}
				if err := arch.Close(); err != nil {
					b.Fatal(err)
				}
				db := reldb.New()
				ids, err := etl.IngestStore(st, fix.reg, nil, db)
				if err != nil {
					b.Fatal(err)
				}
				if len(ids) != 1 {
					b.Fatalf("ingested %v", ids)
				}
			}
			b.StopTimer()
			var onDisk int64
			st, err := rawfile.NewStore(lastDir)
			if err != nil {
				b.Fatal(err)
			}
			hosts, _ := st.Hosts()
			for _, host := range hosts {
				dir, _ := st.HostDir(host)
				entries, _ := os.ReadDir(dir)
				for _, e := range entries {
					if info, err := e.Info(); err == nil {
						onDisk += info.Size()
					}
				}
			}
			b.ReportMetric(float64(onDisk)/float64(len(fix.run.Snapshots)), "bytes/snap")
			b.ReportMetric(float64(len(fix.run.Snapshots))*float64(b.N)/b.Elapsed().Seconds(), "snaps/s")
		})
	}
}

// ---- PR8: durable segmented storage ----

// coldBenchFill loads hosts×span/step points through the write path —
// RAM hot set over a cold segment store — evicting as it goes, and
// returns the store stats after a final flush.
func coldBenchFill(b *testing.B, db *tsdb.DB, hosts, span, step int) {
	b.Helper()
	for t := 0; t < span; t += step {
		for h := 0; h < hosts; h++ {
			tags := tsdb.Tags{Host: fmt.Sprintf("n%03d", h), DevType: "cpu", Device: "0", Event: "user"}
			db.Put(tags, float64(t), float64((t/step+h)%97))
		}
		if t%600 == 0 {
			if err := db.CommitCold(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := db.CommitCold(); err != nil {
		b.Fatal(err)
	}
	if err := db.FlushCold(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTSDBColdQuery measures range queries against a day of data
// whose hot set covers only the last two hours — the on-disk dataset is
// an order of magnitude larger than RAM. "cold" aggregates 20 hours
// served entirely from sealed segments via pread, "hot" the RAM-resident
// tail, and "spanning" a window crossing the boundary. The bytes/point
// metric is the raw tier's on-disk footprint.
func BenchmarkTSDBColdQuery(b *testing.B) {
	cs, err := segstore.Open(b.TempDir(), segstore.Options{
		CompactRawAfter: -1, CompactMidAfter: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer cs.Close()
	db := tsdb.New()
	if err := db.AttachCold(cs, 2*3600); err != nil {
		b.Fatal(err)
	}
	const hosts, span, step = 32, 24 * 3600, 30
	coldBenchFill(b, db, hosts, span, step)
	// Seal every shard so the cold window genuinely reads sealed,
	// indexed segments — the steady state of data past the hot window —
	// rather than re-parsing still-active segment tails.
	if err := cs.Seal(); err != nil {
		b.Fatal(err)
	}
	st := cs.Stats()
	totalPts := st.ActivePoints
	for _, n := range st.TierPoints {
		totalPts += n
	}
	bytesPerPt := float64(st.TierBytes[0]+st.ActiveBytes) / float64(totalPts)

	cases := []struct {
		name       string
		start, end float64
	}{
		{"cold-20h", 0, 20 * 3600},
		{"spanning-4h", 20 * 3600, 24 * 3600},
		{"hot-1h", 23 * 3600, 24 * 3600},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := db.Do(tsdb.Query{DevType: "cpu", Event: "user",
					Start: c.start, End: c.end, Downsample: 600, Aggregate: tsdb.Sum})
				if err != nil || len(res) == 0 || len(res[0].Points) == 0 {
					b.Fatalf("res=%v err=%v", res, err)
				}
			}
			b.ReportMetric(bytesPerPt, "diskB/pt")
		})
	}
}

// BenchmarkSegstoreRecover measures restart recovery: reopening a
// closed multi-segment store (CRC-verifying every sealed frame and
// rebuilding shard state) for a ~100k-point day of data.
func BenchmarkSegstoreRecover(b *testing.B) {
	dir := b.TempDir()
	opts := segstore.Options{SegmentBytes: 64 << 10, CompactRawAfter: -1, CompactMidAfter: -1}
	st, err := segstore.Open(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	const hosts, span, step = 32, 24 * 3600, 30
	for t := 0; t < span; t += step {
		for h := 0; h < hosts; h++ {
			st.Append(segstore.Point{
				Labels: segstore.Labels{Host: fmt.Sprintf("n%03d", h),
					DevType: "cpu", Device: "0", Event: "user"},
				Time: float64(t), Value: float64(t % 97),
			})
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	points := float64(hosts * (span / step))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		re, err := segstore.Open(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := re.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points*float64(b.N)/b.Elapsed().Seconds(), "pts/s")
}

// BenchmarkSegstoreAppend measures durable ingest throughput: append
// plus per-600-point commit, the shape of the listend write path.
func BenchmarkSegstoreAppend(b *testing.B) {
	st, err := segstore.Open(b.TempDir(), segstore.Options{
		CompactRawAfter: -1, CompactMidAfter: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Append(segstore.Point{
			Labels: segstore.Labels{Host: fmt.Sprintf("n%03d", i%32),
				DevType: "cpu", Device: "0", Event: "user"},
			Time: float64(i), Value: float64(i % 97),
		})
		if i%600 == 599 {
			if err := st.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := st.Commit(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSegstoreCompact measures one full compaction ladder — a day
// of raw samples downsampled raw → 10m → 1h — and reports the on-disk
// bytes per original point of each resulting tier, the storage trade
// retention windows buy.
func BenchmarkSegstoreCompact(b *testing.B) {
	const hosts, span, step = 16, 48 * 3600, 30
	points := float64(hosts * (span / step))
	b.ReportAllocs()
	var st segstore.Stats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Tiny segments so raw rotates often enough that several 10m
		// generations exist and the oldest ages into the hourly tier —
		// every tier then has a bytes-per-point figure to report.
		cs, err := segstore.Open(b.TempDir(), segstore.Options{
			SegmentBytes: 1 << 10, FlushBytes: 512,
			CompactRawAfter: 3600, CompactMidAfter: 6 * 3600})
		if err != nil {
			b.Fatal(err)
		}
		for t := 0; t < span; t += step {
			for h := 0; h < hosts; h++ {
				cs.Append(segstore.Point{
					Labels: segstore.Labels{Host: fmt.Sprintf("n%03d", h),
						DevType: "cpu", Device: "0", Event: "user"},
					Time: float64(t), Value: float64(t % 97),
				})
			}
		}
		if err := cs.Seal(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		prev := cs.Stats().Compactions
		for {
			if err := cs.Compact(); err != nil {
				b.Fatal(err)
			}
			now := cs.Stats().Compactions
			if now == prev {
				break
			}
			prev = now
		}
		b.StopTimer()
		st = cs.Stats()
		cs.Close()
		b.StartTimer()
	}
	tiers := []string{"raw", "10m", "1h"}
	for t, name := range tiers {
		if st.TierPoints[t] > 0 {
			b.ReportMetric(float64(st.TierBytes[t])/points, "diskB/pt-"+name)
		}
	}
}

// BenchmarkPipelineStageHop measures the framework tax on one item
// crossing a three-stage pipeline: submit, two queue hops, and the
// per-stage bookkeeping. The completion channel mirrors how the
// listener acks, so the number is the real per-message overhead the
// daemons pay for staged execution.
func BenchmarkPipelineStageHop(b *testing.B) {
	type item struct{ done chan error }
	p := pipeline.New("bench-hop", telemetry.NewRegistry())
	s1 := pipeline.AddStage(p, "a", pipeline.Options[*item]{Queue: 64},
		func(ctx context.Context, it *item) (*item, error) { return it, nil })
	s2 := pipeline.AddStage(p, "b", pipeline.Options[*item]{Queue: 64},
		func(ctx context.Context, it *item) (*item, error) { return it, nil })
	sink := pipeline.AddSink(p, "c", pipeline.Options[*item]{Queue: 64},
		func(ctx context.Context, it *item) error { it.done <- nil; return nil })
	s1.To(s2)
	s2.To(sink)
	p.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := &item{done: make(chan error, 1)}
		if err := s1.Submit(context.Background(), it); err != nil {
			b.Fatal(err)
		}
		if err := <-it.done; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPipelineFanOut measures 8-way key-affinity fan-out
// throughput: items for 64 keys routed across 8 workers with per-key
// order preserved — the shape a multi-broker ingest stage would use.
func BenchmarkPipelineFanOut(b *testing.B) {
	type item struct{ key int }
	var handled atomic.Int64
	p := pipeline.New("bench-fan", telemetry.NewRegistry())
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("host%02d", i)
	}
	sink := pipeline.AddSink(p, "fan", pipeline.Options[item]{
		Workers: 8,
		Queue:   256,
		Key:     func(it item) string { return keys[it.key] },
	}, func(ctx context.Context, it item) error {
		handled.Add(1)
		return nil
	})
	p.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sink.Submit(context.Background(), item{key: i & 63}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		b.Fatal(err)
	}
	if handled.Load() != int64(b.N) {
		b.Fatalf("handled %d of %d", handled.Load(), b.N)
	}
}
