// The -chaos-kill-store restart audit: SIGKILL a real child process
// mid-ingest and mid-compaction, reopen the segment store it left
// behind, and assert the durability contract — every point the child
// reported synced survives, whatever else survives is a per-series
// prefix of the emitted stream (no duplication, no reordering, no
// invented data), and compaction can die at any instant without losing
// or double-counting a single point.
//
// The child is this same binary re-executed with the hidden
// -store-worker flag; it speaks a line protocol on stdout:
//
//	SYNCED n    all of the first n points are committed to the OS
//	COMPACT k   compaction pass k finished
//	DONE        the worker completed without being killed
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"gostats/internal/segstore"
)

// Hidden worker-mode flags (the parent sets them when re-executing
// itself; they are not part of the user-facing surface).
var (
	storeWorkerMode = flag.String("store-worker", "",
		"internal: run as a kill-store worker (ingest or compact)")
	storeWorkerDir = flag.String("store-dir", "",
		"internal: segment store directory for -store-worker")
	storeWorkerPoints = flag.Int("store-points", 0,
		"internal: points the -store-worker ingests")
)

const (
	ksHosts = 8      // distinct hosts → series, spread over the store's shards
	ksStep  = 30.0   // seconds between a host's samples
	ksBase  = 1000.0 // first sample time
)

// ksPoint is the deterministic emitted stream: point i belongs to host
// i%ksHosts and is that host's (i/ksHosts)-th sample. Times are integer
// multiples of 30 s (exactly representable in the codec's millisecond
// grid) and values are an exact function of i, so the parent can verify
// recovered data byte-for-byte without shipping state to the child.
func ksPoint(i int) segstore.Point {
	h := i % ksHosts
	k := i / ksHosts
	return segstore.Point{
		Labels: segstore.Labels{
			Host:    fmt.Sprintf("node%03d", h),
			DevType: "cpu",
			Device:  "0",
			Event:   "user",
		},
		Time:  ksBase + float64(k)*ksStep,
		Value: math.Sin(float64(i)*0.01)*100 + float64(h),
	}
}

// ksWorkerOpts opens the store the way both parent and child must agree
// on: small segments so seals and multi-segment recovery are exercised,
// explicit compaction only.
func ksWorkerOpts() segstore.Options {
	return segstore.Options{
		SegmentBytes:    16 << 10,
		CompactRawAfter: 1800, // raw older than 30 min behind newest compacts
		CompactMidAfter: -1,   // the audit stops at the 10m tier
	}
}

// runStoreWorker is the child side. It never returns.
func runStoreWorker(mode, dir string, points int) {
	st, err := segstore.Open(dir, ksWorkerOpts())
	if err != nil {
		log.Fatalf("store-worker: %v", err)
	}
	switch mode {
	case "ingest":
		for i := 0; i < points; i++ {
			st.Append(ksPoint(i))
			if (i+1)%256 == 0 {
				if err := st.Commit(); err != nil {
					log.Fatalf("store-worker: commit: %v", err)
				}
				fmt.Printf("SYNCED %d\n", i+1)
			}
		}
		if err := st.Commit(); err != nil {
			log.Fatalf("store-worker: final commit: %v", err)
		}
		fmt.Printf("SYNCED %d\n", points)
	case "compact":
		// Ingest everything, make it fully durable, then compact in a
		// loop until the parent kills us mid-pass.
		for i := 0; i < points; i++ {
			st.Append(ksPoint(i))
		}
		if err := st.Commit(); err != nil {
			log.Fatalf("store-worker: commit: %v", err)
		}
		if err := st.Seal(); err != nil {
			log.Fatalf("store-worker: seal: %v", err)
		}
		fmt.Printf("SYNCED %d\n", points)
		for pass := 0; pass < 10000; pass++ {
			if err := st.Compact(); err != nil {
				log.Fatalf("store-worker: compact: %v", err)
			}
			fmt.Printf("COMPACT %d\n", pass)
		}
	default:
		log.Fatalf("store-worker: unknown mode %q", mode)
	}
	fmt.Println("DONE")
	os.Exit(0)
}

// spawnAndKill runs this binary as a -store-worker child, reads its
// stdout line protocol, and SIGKILLs it the moment shouldKill returns
// true for a line. It reports the last SYNCED count the child
// acknowledged and whether the child finished before the kill landed.
func spawnAndKill(mode, dir string, points int, shouldKill func(line string) bool) (synced int, done bool, err error) {
	self, err := os.Executable()
	if err != nil {
		return 0, false, err
	}
	cmd := exec.Command(self,
		"-store-worker", mode,
		"-store-dir", dir,
		"-store-points", strconv.Itoa(points))
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return 0, false, err
	}
	if err := cmd.Start(); err != nil {
		return 0, false, err
	}
	killed := false
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if n, ok := strings.CutPrefix(line, "SYNCED "); ok {
			if v, perr := strconv.Atoi(n); perr == nil {
				synced = v
			}
		}
		if line == "DONE" {
			done = true
		}
		if !killed && shouldKill(line) {
			killed = true
			// SIGKILL, not SIGTERM: the store gets no chance to flush,
			// close, or clean up — the contract under test.
			if kerr := cmd.Process.Kill(); kerr != nil {
				return synced, done, kerr
			}
		}
	}
	cmd.Wait() // the kill makes a non-zero exit expected
	if !killed && !done {
		return synced, done, fmt.Errorf("store-chaos: %s worker exited early (synced %d)", mode, synced)
	}
	return synced, done, nil
}

// ksRecovered is the recovered stream, re-sorted into per-host time
// order for prefix comparison against the emitted sequence.
type ksRecovered struct {
	byHost map[string][]segstore.AggPoint
	total  uint64 // point count folded across tiers (Σ Count)
	sum    float64
}

func ksScan(st *segstore.Store) (*ksRecovered, error) {
	chunks, err := st.Scan(segstore.Filter{}, 0, math.MaxFloat64)
	if err != nil {
		return nil, err
	}
	r := &ksRecovered{byHost: map[string][]segstore.AggPoint{}}
	for _, c := range chunks {
		r.byHost[c.Labels.Host] = append(r.byHost[c.Labels.Host], c.Points...)
		for _, p := range c.Points {
			r.total += p.Count
			r.sum += p.Sum
		}
	}
	for h := range r.byHost {
		pts := r.byHost[h]
		sort.Slice(pts, func(i, j int) bool { return pts[i].Time < pts[j].Time })
	}
	return r, nil
}

// verifyIngestRecovery reopens the store a mid-ingest kill left behind
// and checks the whole durability contract: at least the synced prefix
// survived, nothing beyond the emitted stream exists, and per host the
// recovered points are exactly the emitted prefix — same times, same
// values, each exactly once.
func verifyIngestRecovery(dir string, synced, emitted int) error {
	st, err := segstore.Open(dir, ksWorkerOpts())
	if err != nil {
		return fmt.Errorf("store-chaos: reopen after ingest kill: %w", err)
	}
	defer st.Close()
	rec, err := ksScan(st)
	if err != nil {
		return fmt.Errorf("store-chaos: scan after ingest kill: %w", err)
	}
	recovered := int(rec.total)
	if recovered < synced {
		return fmt.Errorf("store-chaos: ingest kill lost synced data: recovered %d < synced %d", recovered, synced)
	}
	if recovered > emitted {
		return fmt.Errorf("store-chaos: recovered %d points but only %d were emitted", recovered, emitted)
	}
	for h, pts := range rec.byHost {
		var hostIdx int
		if _, err := fmt.Sscanf(h, "node%03d", &hostIdx); err != nil {
			return fmt.Errorf("store-chaos: unexpected recovered host %q", h)
		}
		for k, p := range pts {
			want := ksPoint(k*ksHosts + hostIdx)
			if p.Count != 1 || p.Time != want.Time || p.Sum != want.Value {
				return fmt.Errorf("store-chaos: %s point %d diverges from emitted stream: got (t=%v n=%d v=%v) want (t=%v v=%v)",
					h, k, p.Time, p.Count, p.Sum, want.Time, want.Value)
			}
		}
	}
	lost := emitted - recovered
	fmt.Printf("simcluster store-chaos: ingest kill: emitted=%d synced=%d recovered=%d lost_unsynced_tail=%d — per-host prefixes exact\n",
		emitted, synced, recovered, lost)
	return nil
}

// verifyCompactRecovery reopens the store a mid-compaction kill left
// behind. Every point was synced before compaction began, so the
// contract is exact conservation: Σ Count == points and Σ Sum equals
// the emitted sum — a lost input segment or a double-counted one (an
// output surviving alongside its inputs) both fail. The surviving data
// must also still answer an aggregate query per host exactly.
func verifyCompactRecovery(dir string, points int) error {
	st, err := segstore.Open(dir, ksWorkerOpts())
	if err != nil {
		return fmt.Errorf("store-chaos: reopen after compact kill: %w", err)
	}
	defer st.Close()
	rec, err := ksScan(st)
	if err != nil {
		return fmt.Errorf("store-chaos: scan after compact kill: %w", err)
	}
	if int(rec.total) != points {
		return fmt.Errorf("store-chaos: compact kill broke conservation: Σcount=%d, want exactly %d (lost or double-counted)", rec.total, points)
	}
	var wantSum float64
	hostSum := map[string]float64{}
	for i := 0; i < points; i++ {
		p := ksPoint(i)
		wantSum += p.Value
		hostSum[p.Labels.Host] += p.Value
	}
	if relDiff(rec.sum, wantSum) > 1e-9 {
		return fmt.Errorf("store-chaos: compact kill broke aggregates: Σsum=%g, want %g", rec.sum, wantSum)
	}
	for h, pts := range rec.byHost {
		var s float64
		for _, p := range pts {
			s += p.Sum
		}
		if relDiff(s, hostSum[h]) > 1e-9 {
			return fmt.Errorf("store-chaos: compact kill: host %s Σsum=%g, want %g", h, s, hostSum[h])
		}
	}
	stats := st.Stats()
	fmt.Printf("simcluster store-chaos: compact kill: %d points conserved across tiers (raw=%d segs, 10m=%d segs); Σsum matches to 1e-9\n",
		points, stats.TierSegments[0], stats.TierSegments[1])
	return nil
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return d
	}
	return d / scale
}

// runKillStoreAudit is the parent side of -chaos-kill-store: two
// kill -9 scenarios against a live child, each followed by a reopen and
// a full equivalence check against the deterministic emitted stream.
// Any violation exits non-zero.
func runKillStoreAudit(outDir string) {
	const points = 24000
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatalf("simcluster: %v", err)
	}

	// Scenario 1: kill lands mid-append, after at least half the stream
	// is acknowledged synced. The kill races the child's write loop, so
	// it lands at an arbitrary byte offset in the active segments.
	dir1 := filepath.Join(outDir, "killstore-ingest")
	synced, done, err := spawnAndKill("ingest", dir1, points, func(line string) bool {
		n, ok := strings.CutPrefix(line, "SYNCED ")
		if !ok {
			return false
		}
		v, _ := strconv.Atoi(n)
		return v >= points/2
	})
	if err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	if done {
		log.Fatalf("simcluster store-chaos: ingest worker finished before the kill landed — raise -store-points")
	}
	if err := verifyIngestRecovery(dir1, synced, points); err != nil {
		log.Fatalf("simcluster: %v", err)
	}

	// Scenario 2: every point is durable, then the kill lands while
	// compaction is rewriting raw segments into the 10m tier.
	dir2 := filepath.Join(outDir, "killstore-compact")
	synced2, _, err := spawnAndKill("compact", dir2, points, func(line string) bool {
		return strings.HasPrefix(line, "COMPACT ")
	})
	if err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	if synced2 != points {
		log.Fatalf("simcluster store-chaos: compact worker synced %d of %d before compaction", synced2, points)
	}
	if err := verifyCompactRecovery(dir2, points); err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	fmt.Println("simcluster store-chaos: restart audit passed — synced data survives kill -9 at any instant")
}
