// Command simcluster drives an end-to-end simulated deployment: a
// cluster of nodes under a synthetic job mix, monitored in either
// operation mode, with the resulting raw archive and job table written
// out for jobetl/portal.
//
// Usage:
//
//	simcluster [-mode cron|daemon] [-nodes 16] [-days 1] [-out ./simout]
//	           [-telemetry 127.0.0.1:0]
//
// Unless disabled with -telemetry off, the run serves its own ops
// endpoint (/metrics, /healthz, /debug/pprof) and, at exit, scrapes it
// to print a fleet overhead summary against the paper's ~0.09 s per
// collection and <0.02% utilization budget (§III).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"gostats/internal/acct"
	"gostats/internal/broker"
	"gostats/internal/chip"
	"gostats/internal/cluster"
	"gostats/internal/collect"
	"gostats/internal/etl"
	"gostats/internal/hwsim"
	"gostats/internal/lustresim"
	"gostats/internal/model"
	"gostats/internal/rawfile"
	"gostats/internal/realtime"
	"gostats/internal/reldb"
	"gostats/internal/telemetry"
	"gostats/internal/workload"
	"gostats/internal/xalt"
)

func main() {
	mode := flag.String("mode", "daemon", "operation mode: cron or daemon")
	nodes := flag.Int("nodes", 16, "cluster size")
	days := flag.Float64("days", 1, "simulated days")
	jobs := flag.Int("jobs", 0, "jobs to submit (default: enough to fill the span)")
	out := flag.String("out", "simout", "output directory")
	seed := flag.Int64("seed", 1, "simulation seed")
	telemetryAddr := flag.String("telemetry", "127.0.0.1:0",
		`ops endpoint address ("off" to disable)`)
	flag.Parse()

	var ops *telemetry.OpsServer
	if *telemetryAddr != "off" && *telemetryAddr != "" {
		var err error
		ops, err = telemetry.Serve(*telemetryAddr, telemetry.Default())
		if err != nil {
			log.Fatalf("simcluster: %v", err)
		}
		defer ops.Close()
		ops.SetHealth("engine", nil)
		fmt.Printf("simcluster: telemetry at %s/metrics\n", ops.URL())
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	store, err := rawfile.NewStore(filepath.Join(*out, "central"))
	if err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	span := *days * 86400
	nJobs := *jobs
	if nJobs == 0 {
		nJobs = *nodes * int(span/7200)
	}
	specs := workload.GenerateFleet(workload.FleetOpts{Seed: *seed, Jobs: nJobs, SpanSec: span * 0.8})
	// Keep jobs small enough for the cluster and short enough to finish.
	for i := range specs {
		if specs[i].Nodes > *nodes {
			specs[i].Nodes = *nodes
		}
		if specs[i].Runtime > span/4 {
			specs[i].Runtime = span / 4
		}
		specs[i].Queue = "normal"
	}

	eng, err := cluster.NewEngine(*nodes, chip.StampedeNode(), 600, *seed)
	if err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	// All nodes mount one shared Lustre filesystem: concurrent jobs
	// genuinely interfere through the MDS and OSS capacity models.
	eng.FS = lustresim.New(lustresim.DefaultConfig())

	// The scheduler writes its accounting log as jobs complete; the ETL
	// joins against it, exactly as in the paper's deployment.
	acctPath := filepath.Join(*out, "accounting.log")
	acctFile, err := os.Create(acctPath)
	if err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	acctW := acct.NewWriter(acctFile)
	// The XALT shim captures each job's environment at launch; here the
	// capture happens with the accounting write.
	xdb := xalt.NewDB()
	eng.OnJobEnd = func(spec workload.Spec, start, end float64, hosts []string) error {
		vectorized := false
		if st, ok := spec.Model.(workload.Steady); ok && st.P.VecFrac > 0.3 {
			vectorized = true
		}
		if err := xdb.Put(xalt.Capture(spec.JobID, spec.Exe, spec.User, vectorized, *seed)); err != nil {
			return err
		}
		return acctW.Append(acct.FromSpec(spec, start, end, hosts))
	}

	var srv *broker.Server
	var listener *realtime.Listener
	listenDone := make(chan error, 1)
	switch *mode {
	case "cron":
		spoolOf := func(host string) string { return filepath.Join(*out, "spool", host) }
		eng.NewSink = func(n *hwsim.Node, col *collect.Collector) (cluster.Sink, error) {
			logger, err := rawfile.NewNodeLogger(spoolOf(n.Host()), col.Header())
			if err != nil {
				return nil, err
			}
			return cronSink{logger}, nil
		}
		eng.SyncHook = func(host string, now float64) error {
			return store.SyncFrom(host, spoolOf(host))
		}
	case "daemon":
		srv = broker.NewServer()
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatalf("simcluster: %v", err)
		}
		reg := chip.StampedeNode().Registry()
		eng.NewSink = func(n *hwsim.Node, col *collect.Collector) (cluster.Sink, error) {
			client, err := broker.Dial(addr)
			if err != nil {
				return nil, err
			}
			return daemonSink{broker.SnapshotPublisher{C: client}, client}, nil
		}
		cons, err := broker.DialConsumer(addr, broker.StatsQueue)
		if err != nil {
			log.Fatalf("simcluster: %v", err)
		}
		mon := realtime.NewMonitor(reg, realtime.DefaultRules())
		mon.Notify = func(a realtime.Alert) { fmt.Printf("ALERT %s\n", a) }
		listener = &realtime.Listener{
			Cons: cons, Monitor: mon, Store: store,
			Headers: func(host string) rawfile.Header {
				return rawfile.Header{Hostname: host, Arch: "sandybridge", Registry: reg}
			},
		}
		go func() { listenDone <- listener.Run() }()
	default:
		log.Fatalf("simcluster: unknown mode %q", *mode)
	}

	if err := eng.Start(); err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	eng.Submit(specs...)
	if err := eng.Run(span); err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	if err := eng.Close(); err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	if *mode == "cron" {
		// Final morning sync.
		for _, host := range eng.Nodes() {
			if err := store.SyncFrom(host, filepath.Join(*out, "spool", host)); err != nil {
				log.Fatalf("simcluster: %v", err)
			}
		}
	} else {
		// The simulation outruns the archiver: wait until the listener
		// has consumed every published snapshot before shutting down.
		deadline := time.Now().Add(120 * time.Second)
		for time.Now().Before(deadline) {
			if uint64(listener.Processed()) >= srv.QueueCounts(broker.StatsQueue).Published {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		qs := srv.QueueCounts(broker.StatsQueue)
		fmt.Printf("simcluster: broker published=%d delivered=%d redelivered=%d acked=%d backlog=%d listener_processed=%d\n",
			qs.Published, qs.Delivered, qs.Redelivered, qs.Acked,
			srv.QueueDepth(broker.StatsQueue), listener.Processed())
		srv.Close()
		if err := <-listenDone; err != nil {
			log.Fatalf("simcluster: listener: %v", err)
		}
	}

	if err := acctFile.Close(); err != nil {
		log.Fatalf("simcluster: %v", err)
	}

	// ETL into the job table, joining the accounting log.
	recs, err := acct.LoadFile(acctPath)
	if err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	meta := map[string]etl.Meta{}
	for _, r := range recs {
		meta[r.JobID] = etl.MetaFromAcct(r)
	}
	db := reldb.New()
	ids, err := etl.IngestStore(store, chip.StampedeNode().Registry(), meta, db)
	if err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	dbPath := filepath.Join(*out, "jobs.gob")
	if err := db.Save(dbPath); err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	xaltPath := filepath.Join(*out, "xalt.jsonl")
	if err := xdb.Save(xaltPath); err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	fmt.Printf("simcluster: mode=%s nodes=%d days=%g: started %d, finished %d jobs; %d ingested -> %s\n",
		*mode, *nodes, *days, eng.Started, eng.Finished, len(ids), dbPath)
	fmt.Printf("simcluster: browse with: portal -db %s -store %s\n", dbPath, filepath.Join(*out, "central"))
	printOverheadSummary(ops, *nodes, span)
}

// printOverheadSummary reports the fleet's self-measured monitoring cost
// against the paper's budget (§III: ~0.09 s of one core per collection,
// <0.02% overhead at 10-minute sampling). With an ops server running it
// scrapes its own /metrics endpoint — the same view an external
// Prometheus would get — otherwise it reads the in-process registry.
func printOverheadSummary(ops *telemetry.OpsServer, nodes int, spanSec float64) {
	var text string
	if ops != nil {
		resp, err := http.Get(ops.URL() + "/metrics")
		if err != nil {
			log.Printf("simcluster: telemetry scrape: %v", err)
			return
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Printf("simcluster: telemetry scrape: %v", err)
			return
		}
		text = string(b)
	} else {
		text = telemetry.Default().Exposition()
	}
	vals := telemetry.ParseExposition(text)
	count := vals["gostats_collect_seconds_count"]
	sum := vals["gostats_collect_seconds_sum"]
	if count == 0 {
		fmt.Println("simcluster overhead: no collections recorded")
		return
	}
	const (
		budgetPerSweep = 0.09   // paper §III: seconds of one core per collection
		budgetFraction = 0.0002 // paper §III: <0.02% of one core
	)
	mean := sum / count
	verdict := func(ok bool) string {
		if ok {
			return "within budget"
		}
		return "OVER BUDGET"
	}
	fmt.Printf("simcluster overhead: %.0f collections, mean %.4f s each (paper budget %.2f s) — %s\n",
		count, mean, budgetPerSweep, verdict(mean <= budgetPerSweep))
	frac := sum / (float64(nodes) * spanSec)
	fmt.Printf("simcluster overhead: %.1f collector-seconds over %.0f node-seconds = %.4f%% of one core (paper: <%.2f%%) — %s\n",
		sum, float64(nodes)*spanSec, frac*100, budgetFraction*100, verdict(frac <= budgetFraction))
}

type cronSink struct{ logger *rawfile.NodeLogger }

func (s cronSink) Handle(snap model.Snapshot) error { return s.logger.Log(snap) }
func (s cronSink) Close() error                     { return s.logger.Close() }

type daemonSink struct {
	pub    broker.SnapshotPublisher
	client *broker.Client
}

func (s daemonSink) Handle(snap model.Snapshot) error { return s.pub.Publish(snap) }
func (s daemonSink) Close() error                     { return s.client.Close() }
