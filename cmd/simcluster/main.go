// Command simcluster drives an end-to-end simulated deployment: a
// cluster of nodes under a synthetic job mix, monitored in either
// operation mode, with the resulting raw archive and job table written
// out for jobetl/portal.
//
// Usage:
//
//	simcluster [-mode cron|daemon] [-nodes 16] [-days 1] [-out ./simout]
//	           [-codec text|binary] [-telemetry 127.0.0.1:0]
//	           [-chaos] [-chaos-outage 1230]
//	           [-portal-load 0] [-portal-requests 2000]
//
// -codec selects the snapshot encoding end to end: the wire messages
// nodes publish, the node spools, and the central archive files. The
// run summary reports actual bytes-on-wire per snapshot alongside what
// the same stream costs in each codec, so the text/binary trade is
// visible without rerunning.
//
// With -portal-load N > 0, after the ETL builds the job table the run
// serves an in-process portal over it and drives N concurrent readers
// through a mixed /jobs query workload (-portal-requests total),
// reporting throughput, p50/p95 latency, and the query cache's hit
// ratio — the read-path capacity check matching the write-path
// overhead summary below.
//
// With -portal-readers N > 0, the run instead (or additionally) drives
// N concurrent clients through the versioned /api/v1 query API —
// paginated job lists, top-N rankings, time-range metric queries,
// gauges — in-process via ServeHTTP, so N can reach tens of thousands
// without socket limits. Each reader carries its own X-Client-ID and
// every tenth shares one, so the per-client token-bucket limiter fires
// visibly; the report adds the 429 count and, with -data-dir, the
// segment index and block-cache counters from the cold-read path.
//
// Unless disabled with -telemetry off, the run serves its own ops
// endpoint (/metrics, /healthz, /debug/pprof) and, at exit, scrapes it
// to print a fleet overhead summary against the paper's ~0.09 s per
// collection and <0.02% utilization budget (§III).
//
// With -chaos (daemon mode only), the whole broker transport runs
// through a fault-injecting network: connections are torn mid-frame on
// a seeded schedule and a hard broker outage of -chaos-outage simulated
// seconds hits mid-run. Every node publishes through a durable on-disk
// spool, and at exit the run asserts end-to-end snapshot conservation —
// every snapshot a node emitted was either archived centrally or still
// sits in a node spool, with per-host delivery order preserved. Any
// loss exits non-zero.
//
// With -brokers N > 1 (daemon mode only), the run goes through the
// partitioned fabric instead of a single broker: N in-process brokers
// share a consistent-hash partition map, every snapshot is published
// to all replica owners of its host's partition, and a partition-group
// consumer drains every partition from every owner in parallel,
// deduplicating replicated frames by (host, sequence) before archiving.
// -chaos-kill-broker then kills the busiest broker outright at
// -chaos-kill-at simulated seconds: the run must rebalance live
// (breakers trip, the map version bumps, spooled snapshots replay to
// the surviving owners) and still conserve every snapshot — emitted ==
// archived + spooled, zero duplicates past dedup — or it exits
// non-zero.
//
// With -data-dir (daemon mode only), the listener also folds every
// snapshot into a durable time-series store: a RAM hot set over
// crash-safe on-disk segment tiers, closed and sealed at the end of the
// run.
//
// With -chaos-kill-store, no simulation runs at all: the process
// re-executes itself as a storage worker, SIGKILLs it mid-ingest and
// again mid-compaction, reopens each store it left behind, and asserts
// the durability contract — every point acknowledged as synced
// survives, recovery is an exact per-series prefix of the emitted
// stream, and an interrupted compaction neither loses nor
// double-counts a point. Any violation exits non-zero.
//
// With -watch (daemon mode only), every snapshot carries provenance
// stamps from collect through store-ingest (per-stage latency
// histograms and per-host freshness land on /metrics), and an online
// watcher runs off the live assembler's snapshot tap, raising job
// flags mid-run. After the post-hoc ETL the run audits the online
// flags against the batch sweep and reports parity plus the median
// detection latency; parity below -watch-min-parity exits non-zero.
// Combined with -chaos, the run also asserts that per-host freshness
// gauges recovered once the injected outage ended and the spools
// drained.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gostats/internal/acct"
	"gostats/internal/broker"
	"gostats/internal/chip"
	"gostats/internal/cluster"
	"gostats/internal/codec"
	"gostats/internal/collect"
	"gostats/internal/etl"
	"gostats/internal/fabric"
	"gostats/internal/faultnet"
	"gostats/internal/flagging"
	"gostats/internal/hwsim"
	"gostats/internal/lustresim"
	"gostats/internal/model"
	"gostats/internal/portal"
	"gostats/internal/rawfile"
	"gostats/internal/realtime"
	"gostats/internal/reldb"
	"gostats/internal/schema"
	"gostats/internal/segstore"
	"gostats/internal/spool"
	"gostats/internal/telemetry"
	"gostats/internal/trace"
	"gostats/internal/tsdb"
	"gostats/internal/watch"
	"gostats/internal/workload"
	"gostats/internal/xalt"
)

// collectInterval is the simulated collection period in seconds — the
// paper's 10-minute sampling cadence.
const collectInterval = 600

func main() {
	mode := flag.String("mode", "daemon", "operation mode: cron or daemon")
	nodes := flag.Int("nodes", 16, "cluster size")
	days := flag.Float64("days", 1, "simulated days")
	jobs := flag.Int("jobs", 0, "jobs to submit (default: enough to fill the span)")
	out := flag.String("out", "simout", "output directory")
	seed := flag.Int64("seed", 1, "simulation seed")
	chaos := flag.Bool("chaos", false,
		"daemon mode only: inject broker faults and assert snapshot conservation")
	chaosOutage := flag.Float64("chaos-outage", 1230,
		"length of the injected broker outage (simulated seconds)")
	fabricBrokers := flag.Int("brokers", 1,
		"in-process brokers (daemon mode; >1 enables the partitioned fabric)")
	fabricPartitions := flag.Int("partitions", fabric.DefaultPartitions,
		"fabric partition count")
	fabricReplication := flag.Int("replication", fabric.DefaultReplication,
		"fabric publish replication factor")
	chaosKillBroker := flag.Bool("chaos-kill-broker", false,
		"fabric mode: kill the busiest broker mid-run and assert conservation and rebalance")
	chaosKillAt := flag.Float64("chaos-kill-at", 900,
		"simulated time the -chaos-kill-broker kill fires")
	chaosKillStore := flag.Bool("chaos-kill-store", false,
		"run the storage restart audit instead of a simulation: SIGKILL the segment store mid-ingest and mid-compaction, reopen, and assert conservation")
	dataDir := flag.String("data-dir", "",
		"daemon mode: durable time-series store directory behind the listener (empty = RAM only)")
	codecName := flag.String("codec", "text",
		"snapshot codec for wire, spools, and archive: text (v1) or binary (v2)")
	telemetryAddr := flag.String("telemetry", "127.0.0.1:0",
		`ops endpoint address ("off" to disable)`)
	portalLoad := flag.Int("portal-load", 0,
		"concurrent portal readers to drive after ETL (0 = off)")
	portalRequests := flag.Int("portal-requests", 2000,
		"total portal requests across all -portal-load or -portal-readers readers")
	portalReaders := flag.Int("portal-readers", 0,
		"concurrent /api/v1 readers to drive after ETL against the versioned query API (0 = off)")
	watchMode := flag.Bool("watch", false,
		"daemon mode only: trace provenance end to end and run the online job watcher, auditing its flags against the post-hoc ETL")
	watchMinParity := flag.Float64("watch-min-parity", 0.95,
		"minimum online/post-hoc flag parity (fraction of jobs with identical flag sets) before a -watch run fails")
	flag.Parse()
	if *storeWorkerMode != "" {
		runStoreWorker(*storeWorkerMode, *storeWorkerDir, *storeWorkerPoints)
		return
	}
	if *chaosKillStore {
		runKillStoreAudit(*out)
		return
	}
	fabricMode := *fabricBrokers > 1
	if *chaos && *mode != "daemon" {
		log.Fatalf("simcluster: -chaos requires -mode daemon")
	}
	if *watchMode && *mode != "daemon" {
		log.Fatalf("simcluster: -watch requires -mode daemon")
	}
	if fabricMode && *mode != "daemon" {
		log.Fatalf("simcluster: -brokers > 1 requires -mode daemon")
	}
	if *chaos && fabricMode {
		log.Fatalf("simcluster: -chaos is the single-broker fault schedule; use -chaos-kill-broker with -brokers > 1")
	}
	if *chaosKillBroker && *fabricBrokers < 2 {
		log.Fatalf("simcluster: -chaos-kill-broker needs -brokers >= 2 so a survivor owns every partition")
	}
	runCodec, err := codec.ParseVersion(*codecName)
	if err != nil {
		log.Fatalf("simcluster: %v", err)
	}

	var ops *telemetry.OpsServer
	if *telemetryAddr != "off" && *telemetryAddr != "" {
		var err error
		ops, err = telemetry.Serve(*telemetryAddr, telemetry.Default())
		if err != nil {
			log.Fatalf("simcluster: %v", err)
		}
		defer ops.Close()
		ops.SetHealth("engine", nil)
		fmt.Printf("simcluster: telemetry at %s/metrics\n", ops.URL())
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	store, err := rawfile.NewStore(filepath.Join(*out, "central"))
	if err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	store.SetCodec(runCodec)
	span := *days * 86400
	nJobs := *jobs
	if nJobs == 0 {
		nJobs = *nodes * int(span/7200)
	}
	specs := workload.GenerateFleet(workload.FleetOpts{Seed: *seed, Jobs: nJobs, SpanSec: span * 0.8})
	// Keep jobs small enough for the cluster and short enough to finish.
	for i := range specs {
		if specs[i].Nodes > *nodes {
			specs[i].Nodes = *nodes
		}
		if specs[i].Runtime > span/4 {
			specs[i].Runtime = span / 4
		}
		specs[i].Queue = "normal"
	}

	eng, err := cluster.NewEngine(*nodes, chip.StampedeNode(), collectInterval, *seed)
	if err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	// All nodes mount one shared Lustre filesystem: concurrent jobs
	// genuinely interfere through the MDS and OSS capacity models.
	eng.FS = lustresim.New(lustresim.DefaultConfig())

	// The scheduler writes its accounting log as jobs complete; the ETL
	// joins against it, exactly as in the paper's deployment.
	acctPath := filepath.Join(*out, "accounting.log")
	acctFile, err := os.Create(acctPath)
	if err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	acctW := acct.NewWriter(acctFile)
	// The XALT shim captures each job's environment at launch; here the
	// capture happens with the accounting write.
	xdb := xalt.NewDB()
	eng.OnJobEnd = func(spec workload.Spec, start, end float64, hosts []string) error {
		vectorized := false
		if st, ok := spec.Model.(workload.Steady); ok && st.P.VecFrac > 0.3 {
			vectorized = true
		}
		if err := xdb.Put(xalt.Capture(spec.JobID, spec.Exe, spec.User, vectorized, *seed)); err != nil {
			return err
		}
		return acctW.Append(acct.FromSpec(spec, start, end, hosts))
	}

	var srv *broker.Server
	var listener *realtime.Listener
	var ctl *chaosController
	var ledger *wireLedger
	var rec *trace.Recorder
	var watcher *watch.Watcher
	var liveAsm *etl.Assembler
	var watchEvents *os.File
	var srvs []*broker.Server
	var view *fabric.View
	var fpub *fabric.Publisher
	var fgroup *fabric.Group
	var fsp *spool.Spool
	var fctl *fabricController
	var victimAddr string
	var coldStore *segstore.Store
	var tdb *tsdb.DB
	listenDone := make(chan error, 1)
	switch *mode {
	case "cron":
		spoolOf := func(host string) string { return filepath.Join(*out, "spool", host) }
		eng.NewSink = func(n *hwsim.Node, col *collect.Collector) (cluster.Sink, error) {
			logger, err := rawfile.NewNodeLogger(spoolOf(n.Host()), col.Header())
			if err != nil {
				return nil, err
			}
			logger.SetCodec(runCodec)
			return cronSink{logger}, nil
		}
		eng.SyncHook = func(host string, now float64) error {
			return store.SyncFrom(host, spoolOf(host))
		}
	case "daemon":
		reg := chip.StampedeNode().Registry()
		var addr string
		if !fabricMode {
			srv = broker.NewServer()
			if *chaos {
				// Exercise the server-side deadline plumbing under faults.
				srv.IdleTimeout = 30 * time.Second
				srv.AckTimeout = 10 * time.Second
				srv.WriteTimeout = 10 * time.Second
			}
			var err error
			addr, err = srv.Listen("127.0.0.1:0")
			if err != nil {
				log.Fatalf("simcluster: %v", err)
			}
		}
		if *watchMode {
			// Stage histograms and freshness gauges land in the default
			// registry so the ops endpoint's /metrics carries them.
			rec = trace.NewRecorder(telemetry.Default())
			metaByJob := make(map[string]watch.JobMeta, len(specs))
			for _, sp := range specs {
				metaByJob[sp.JobID] = watch.JobMeta{Queue: sp.Queue, Nodes: sp.Nodes}
			}
			watchEvents, err = os.Create(filepath.Join(*out, "watch_events.jsonl"))
			if err != nil {
				log.Fatalf("simcluster: %v", err)
			}
			watcher = &watch.Watcher{
				Registry:   reg,
				Thresholds: flagging.DefaultThresholds(),
				EndGrace:   etl.DefaultEndGrace,
				// Broker delivery is per-host FIFO but cross-host skew can
				// reach a collection interval; hold finalization back that
				// long so lagging tails fold in before the final verdict.
				Lateness: collectInterval,
				Meta: func(id string) (watch.JobMeta, bool) {
					m, ok := metaByJob[id]
					return m, ok
				},
				EventLog: watchEvents,
				Notify: func(e watch.Event) {
					if e.Kind == "flag_raised" {
						fmt.Printf("WATCH flag %s raised on job %s at t=%.0f\n",
							e.Flag, e.JobID, e.StreamTime)
					}
				},
			}
			// The live assembler mirrors the nightly ETL over the delivered
			// stream; its row output is discarded (the post-hoc ETL stays
			// authoritative) — it exists to stamp the assemble hop and to
			// drive the watcher off its snapshot tap.
			liveAsm = &etl.Assembler{Registry: reg, DB: reldb.New(),
				EndGrace: etl.DefaultEndGrace, Trace: rec, OnSnapshot: watcher.Feed}
		}
		if fabricMode {
			// A static-membership fabric: every broker serves the same
			// versioned partition map, publishers confirm against every
			// replica owner, and one shared View rebalances publisher and
			// consumer routing together when a broker dies.
			fabricPol := chaosPolicy()
			addrs := make([]string, *fabricBrokers)
			srvs = make([]*broker.Server, *fabricBrokers)
			for i := range srvs {
				srvs[i] = broker.NewServer()
				a, err := srvs[i].Listen("127.0.0.1:0")
				if err != nil {
					log.Fatalf("simcluster: %v", err)
				}
				addrs[i] = a
			}
			m := fabric.NewMap(addrs, *fabricPartitions, *fabricReplication)
			view = fabric.NewView(m, fabricPol, telemetry.Default())
			for _, s := range srvs {
				s.MapProvider = view.Provider()
			}
			if rec != nil {
				rec.PartitionOf = m.PartitionOf
			}
			pool := fabric.NewClientPool(fabricPol)
			pool.Codec = runCodec
			fpub = fabric.NewPublisher(view, pool)
			fpub.Codec = runCodec
			fpub.Registry = reg
			fpub.Trace = rec
			fctl = &fabricController{
				emitted:   map[string]bool{},
				collected: map[string]bool{},
				lastSeen:  map[string]float64{},
			}
			fmt.Printf("simcluster fabric: %d brokers, %d partitions, replication %d\n",
				len(addrs), *fabricPartitions, *fabricReplication)
			// One publisher (and one durable spool) is shared by every
			// node sink: the engine emits serially and the fabric routes
			// by the host inside each snapshot, so per-node transports
			// would only multiply connections.
			var spoolOnce sync.Once
			var spoolErr error
			eng.NewSink = func(n *hwsim.Node, col *collect.Collector) (cluster.Sink, error) {
				col.Trace = rec
				spoolOnce.Do(func() {
					fsp, spoolErr = spool.Open(filepath.Join(*out, "fabricspool"),
						col.Header(), spool.Options{Codec: runCodec})
					if spoolErr == nil {
						fpub.AttachSpool(fsp)
					}
				})
				if spoolErr != nil {
					return nil, spoolErr
				}
				return fabricSink{ctl: fctl, pub: fpub}, nil
			}
			if *chaosKillBroker {
				// The victim is the broker owning the most partitions as
				// primary — the worst single loss the map allows.
				counts := m.PrimaryCount()
				victimIdx := 0
				for i, a := range addrs {
					if victimAddr == "" || counts[a] > counts[victimAddr] {
						victimIdx, victimAddr = i, a
					}
				}
				fmt.Printf("simcluster chaos: will kill broker %s (primary for %d partitions) at t=%.0f\n",
					victimAddr, counts[victimAddr], *chaosKillAt)
				killed := false
				eng.OnTick = func(now float64) error {
					if !killed && now >= *chaosKillAt {
						killed = true
						fmt.Printf("simcluster chaos: killing broker %s at t=%.0f\n", victimAddr, now)
						return srvs[victimIdx].Close()
					}
					return nil
				}
			}
		} else if *chaos {
			// The outage window is driven by simulated snapshot time so
			// it scales with -days: it opens just before the third
			// collection round and covers -chaos-outage sim-seconds.
			ctl = newChaosController(
				faultnet.New(faultnet.Faults{Seed: *seed, ResetAfterBytes: 32 << 10}),
				900, 900+*chaosOutage)
			fmt.Printf("simcluster chaos: faults %s, outage t=[%.0f,%.0f)\n",
				faultnet.Faults{Seed: *seed, ResetAfterBytes: 32 << 10}, ctl.start, ctl.end)
			eng.NewSink = func(n *hwsim.Node, col *collect.Collector) (cluster.Sink, error) {
				col.Trace = rec
				pub := broker.NewReliablePublisher(addr, broker.StatsQueue)
				pub.Policy = chaosPolicy()
				pub.Codec = runCodec
				pub.Registry = reg
				pub.Trace = rec
				pub.Dialer = ctl.net.Dialer(func(a string) (net.Conn, error) {
					return net.DialTimeout("tcp", a, 2*time.Second)
				})
				sp, err := spool.Open(filepath.Join(*out, "nodespool", n.Host()),
					col.Header(), spool.Options{Codec: runCodec})
				if err != nil {
					return nil, err
				}
				pub.AttachSpool(sp)
				ctl.track(pub, sp)
				return chaosSink{ctl: ctl, pub: pub}, nil
			}
		} else {
			eng.NewSink = func(n *hwsim.Node, col *collect.Collector) (cluster.Sink, error) {
				col.Trace = rec
				client, err := broker.Dial(addr)
				if err != nil {
					return nil, err
				}
				return daemonSink{broker.SnapshotPublisher{
					C: client, Codec: runCodec, Registry: reg, Trace: rec}, client}, nil
			}
		}
		mon := realtime.NewMonitor(reg, realtime.DefaultRules())
		mon.Notify = func(a realtime.Alert) { fmt.Printf("ALERT %s\n", a) }
		listener = &realtime.Listener{
			Monitor: mon, Store: store, Registry: reg, Trace: rec,
			Headers: func(host string) rawfile.Header {
				return rawfile.Header{Hostname: host, Arch: "sandybridge", Registry: reg}
			},
		}
		if *dataDir != "" {
			// Short simulated runs never fill the 1 MiB default, which
			// would leave every point in unsealed active segments; a
			// smaller segment keeps the sealed, indexed read path in play.
			coldStore, err = segstore.Open(*dataDir, segstore.Options{SegmentBytes: 256 << 10})
			if err != nil {
				log.Fatalf("simcluster: open segment store: %v", err)
			}
			tdb = tsdb.New()
			if err := tdb.AttachCold(coldStore, 2*3600); err != nil {
				log.Fatalf("simcluster: %v", err)
			}
			listener.Ingest = tsdb.NewIngester(tdb, reg)
			fmt.Printf("simcluster: durable time-series store at %s\n", *dataDir)
		}
		ledger = &wireLedger{reg: reg}
		listener.OnDecoded = ledger.observe
		listener.OnSnapshot = func(s model.Snapshot) {
			ledger.sample(s)
			if ctl != nil {
				ctl.collect(s)
			}
			if fctl != nil {
				fctl.collect(s)
			}
			if liveAsm != nil {
				liveAsm.Feed(s)
			}
		}
		if fabricMode {
			fgroup = fabric.NewGroup(view)
			fgroup.Handle = listener.HandleBody
			fgroup.Start()
			go func() {
				if err := <-fgroup.Err(); err != nil {
					log.Fatalf("simcluster: %v", err)
				}
			}()
		} else {
			cons, err := broker.DialConsumer(addr, broker.StatsQueue)
			if err != nil {
				log.Fatalf("simcluster: %v", err)
			}
			listener.Cons = cons
			go func() { listenDone <- listener.Run() }()
		}
	default:
		log.Fatalf("simcluster: unknown mode %q", *mode)
	}

	if err := eng.Start(); err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	eng.Submit(specs...)
	runStart := time.Now()
	if err := eng.Run(span); err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	if ctl != nil {
		// Let the node drainers finish replaying their spools before
		// eng.Close stops the publishers; anything still spooled after
		// the timeout is accounted for in the conservation check.
		ctl.waitDrained(60 * time.Second)
	}
	if err := eng.Close(); err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	if *mode == "cron" {
		// Final morning sync.
		for _, host := range eng.Nodes() {
			if err := store.SyncFrom(host, filepath.Join(*out, "spool", host)); err != nil {
				log.Fatalf("simcluster: %v", err)
			}
		}
	} else if fabricMode {
		// Let the spool drainer replay what the kill stranded, then wait
		// for the consumer group to archive every emitted snapshot; the
		// deadline leaves any shortfall to the conservation report.
		deadline := time.Now().Add(120 * time.Second)
		for time.Now().Before(deadline) {
			if (fsp == nil || fsp.Depth() == 0) && fctl.caughtUp() {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		wall := time.Since(runStart).Seconds()
		pst := fpub.Stats()
		gst := fgroup.Stats()
		ledger.print()
		fgroup.Stop()
		// Stop the listener's staged pipeline and flush the archiver —
		// the group no longer feeds it.
		if err := listener.Close(); err != nil {
			log.Fatalf("simcluster: listener close: %v", err)
		}
		if err := fpub.Close(); err != nil {
			log.Fatalf("simcluster: publisher close: %v", err)
		}
		for _, s := range srvs {
			s.Close()
		}
		view.Close()
		archived := fctl.archivedCount()
		fmt.Printf("simcluster fabric: %d snapshots archived through %d brokers in %.2fs wall = %.0f snap/s\n",
			archived, len(srvs), wall, float64(archived)/wall)
		if err := fctl.report(fsp, pst, gst, view.Version(), victimAddr); err != nil {
			log.Fatalf("simcluster: %v", err)
		}
	} else {
		// The simulation outruns the archiver: wait until the listener
		// has consumed every published snapshot before shutting down.
		deadline := time.Now().Add(120 * time.Second)
		for time.Now().Before(deadline) {
			if uint64(listener.Processed()) >= srv.QueueCounts(broker.StatsQueue).Published {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		qs := srv.QueueCounts(broker.StatsQueue)
		fmt.Printf("simcluster: broker published=%d delivered=%d redelivered=%d acked=%d backlog=%d listener_processed=%d\n",
			qs.Published, qs.Delivered, qs.Redelivered, qs.Acked,
			srv.QueueDepth(broker.StatsQueue), listener.Processed())
		ledger.print()
		srv.Close()
		if err := <-listenDone; err != nil {
			log.Fatalf("simcluster: listener: %v", err)
		}
		if ctl != nil {
			// Non-zero exit on any conservation or ordering violation.
			if err := ctl.report(); err != nil {
				log.Fatalf("simcluster: %v", err)
			}
			if rec != nil {
				// The outage stalled delivery; once the spools drained,
				// every host's freshness gauge must have recovered.
				if err := assertFreshnessRecovered(rec, eng.Nodes(), 120); err != nil {
					log.Fatalf("simcluster: %v", err)
				}
			}
		}
	}

	if err := acctFile.Close(); err != nil {
		log.Fatalf("simcluster: %v", err)
	}

	// ETL into the job table, joining the accounting log.
	recs, err := acct.LoadFile(acctPath)
	if err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	meta := map[string]etl.Meta{}
	for _, r := range recs {
		meta[r.JobID] = etl.MetaFromAcct(r)
	}
	db := reldb.New()
	ids, err := etl.IngestStore(store, chip.StampedeNode().Registry(), meta, db)
	if err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	dbPath := filepath.Join(*out, "jobs.gob")
	if err := db.Save(dbPath); err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	xaltPath := filepath.Join(*out, "xalt.jsonl")
	if err := xdb.Save(xaltPath); err != nil {
		log.Fatalf("simcluster: %v", err)
	}
	fmt.Printf("simcluster: mode=%s nodes=%d days=%g: started %d, finished %d jobs; %d ingested -> %s\n",
		*mode, *nodes, *days, eng.Started, eng.Finished, len(ids), dbPath)
	fmt.Printf("simcluster: browse with: portal -db %s -store %s\n", dbPath, filepath.Join(*out, "central"))
	if watcher != nil {
		watcher.Flush()
		if err := watchEvents.Close(); err != nil {
			log.Fatalf("simcluster: %v", err)
		}
		if err := auditWatch(watcher, db, rec, *watchMinParity); err != nil {
			log.Fatalf("simcluster: %v", err)
		}
	}
	if *portalLoad > 0 {
		if err := runPortalLoad(db, rec, *portalLoad, *portalRequests); err != nil {
			log.Fatalf("simcluster: portal load: %v", err)
		}
	}
	// The /api/v1 load runs while the segment store is still open so
	// cold time-range queries exercise the indexed read path.
	if *portalReaders > 0 {
		if err := runAPILoad(db, tdb, *portalReaders, *portalRequests, span); err != nil {
			log.Fatalf("simcluster: api load: %v", err)
		}
	}
	if coldStore != nil {
		if err := coldStore.Close(); err != nil {
			log.Fatalf("simcluster: segment store close: %v", err)
		}
		st := coldStore.Stats()
		fmt.Printf("simcluster store: sealed durable tsdb: %d raw segments (%d B), %d points archived\n",
			st.TierSegments[0], st.TierBytes[0], st.TierPoints[0])
	}
	printOverheadSummary(ops, *nodes, span)
}

// auditWatch compares the online watcher's final flag sets against the
// post-hoc batch sweep over the authoritative job table — the detection
// parity audit from the run's -watch mode. It prints parity, detection
// latency (stream seconds from job start to first raise), and the
// provenance recorder's stage/freshness view, and fails the run when
// parity drops below minParity.
func auditWatch(w *watch.Watcher, db *reldb.DB, rec *trace.Recorder, minParity float64) error {
	rep, err := flagging.Sweep(db, flagging.Default(flagging.DefaultThresholds()))
	if err != nil {
		return fmt.Errorf("watch audit: %w", err)
	}
	results := w.Results()

	// Parity over the union of job ids: a job matches when the online
	// and post-hoc flag sets are identical (both empty included).
	ids := map[string]bool{}
	for _, r := range db.All() {
		ids[r.JobID] = true
	}
	for id := range results {
		ids[id] = true
	}
	matches, total := 0, len(ids)
	var mismatched []string
	for id := range ids {
		want := append([]string(nil), rep.ByJob[id]...)
		got := append([]string(nil), results[id].Flags...)
		sort.Strings(want)
		sort.Strings(got)
		if len(want) == len(got) && func() bool {
			for i := range want {
				if want[i] != got[i] {
					return false
				}
			}
			return true
		}() {
			matches++
		} else {
			mismatched = append(mismatched,
				fmt.Sprintf("%s: online %v vs post-hoc %v", id, got, want))
		}
	}
	parity := 1.0
	if total > 0 {
		parity = float64(matches) / float64(total)
	}

	// Detection latency: stream seconds from job start to each flag's
	// first mid-run raise; raises at finalize count too, but the preEnd
	// share shows how many fired while the job was still running.
	var latencies []float64
	preEnd := 0
	for _, res := range results {
		for _, at := range res.Raised {
			latencies = append(latencies, at-res.Start)
			if at < res.End {
				preEnd++
			}
		}
	}
	sort.Float64s(latencies)
	median := 0.0
	if n := len(latencies); n > 0 {
		median = latencies[n/2]
	}

	fmt.Printf("simcluster watch: flag parity %d/%d jobs (%.1f%%) online vs post-hoc ETL; %d jobs flagged post-hoc\n",
		matches, total, 100*parity, len(rep.ByJob))
	if len(latencies) > 0 {
		fmt.Printf("simcluster watch: %d flag raises, %d before job end; median detection latency %.0f s after job start (stream time)\n",
			len(latencies), preEnd, median)
	} else {
		fmt.Println("simcluster watch: no flags raised by either path")
	}
	sort.Strings(mismatched)
	for i, m := range mismatched {
		if i == 5 {
			fmt.Printf("simcluster watch: ... %d more mismatches\n", len(mismatched)-5)
			break
		}
		fmt.Printf("simcluster watch: mismatch %s\n", m)
	}
	if rec != nil {
		rec.RefreshFreshness()
		sum := rec.Snapshot()
		for _, st := range sum.Stages {
			fmt.Printf("simcluster watch: stage %-14s %6d hops, mean %.1f ms, p95 %.1f ms\n",
				st.Stage, st.Count, 1e3*st.MeanSeconds, 1e3*st.P95Seconds)
		}
		maxFresh := 0.0
		for _, h := range sum.Hosts {
			if h.FreshnessSeconds > maxFresh {
				maxFresh = h.FreshnessSeconds
			}
		}
		fmt.Printf("simcluster watch: freshness tracked on %d hosts, max %.2f s behind wall clock\n",
			len(sum.Hosts), maxFresh)
	}
	if parity < minParity {
		return fmt.Errorf("watch audit: parity %.1f%% below required %.1f%%", 100*parity, 100*minParity)
	}
	return nil
}

// assertFreshnessRecovered verifies every simulated host has a
// freshness entry no older than boundSec wall seconds — the chaos-mode
// proof that the injected outage's staleness was transient and spool
// replay brought every host back to queryable-fresh.
func assertFreshnessRecovered(rec *trace.Recorder, hosts []string, boundSec float64) error {
	rec.RefreshFreshness()
	sum := rec.Snapshot()
	fresh := map[string]float64{}
	for _, h := range sum.Hosts {
		fresh[h.Host] = h.FreshnessSeconds
	}
	maxFresh := 0.0
	for _, host := range hosts {
		f, ok := fresh[host]
		if !ok {
			return fmt.Errorf("chaos: host %s has no freshness gauge after drain", host)
		}
		if f > boundSec {
			return fmt.Errorf("chaos: host %s freshness %.1f s exceeds %.0f s after drain — gauge did not recover", host, f, boundSec)
		}
		if f > maxFresh {
			maxFresh = f
		}
	}
	fmt.Printf("simcluster chaos: freshness recovered on all %d hosts (max %.2f s)\n",
		len(hosts), maxFresh)
	return nil
}

// portalLoadMix is the read workload the -portal-load readers cycle
// through: the job list with histograms, filtered variants, the JSON
// API, and the aggregate pages — the same per-route mix the portal's
// query cache is keyed on.
var portalLoadMix = [...]string{
	"/jobs",
	"/jobs?status=COMPLETED",
	"/jobs?field1=runtime&op1=gte&val1=600",
	"/jobs?field1=nodes&op1=gte&val1=2&status=COMPLETED",
	"/api/jobs?field1=runtime&op1=gte&val1=600",
	"/dates",
	"/energy",
}

// runPortalLoad serves an in-process portal over the freshly built job
// table and drives `readers` concurrent clients through `total` requests
// of the mixed workload, then reports throughput, latency percentiles,
// and cache effectiveness from the portal's own telemetry. With a trace
// recorder (a -watch run), the portal also serves the run's live lag
// summary on /api/lag.
func runPortalLoad(db *reldb.DB, rec *trace.Recorder, readers, total int) error {
	if total <= 0 {
		return fmt.Errorf("-portal-requests must be positive, got %d", total)
	}
	reg := telemetry.NewRegistry()
	ps := portal.NewServer(db, chip.StampedeNode().Registry(), nil)
	ps.Metrics = reg
	ps.Lag = rec
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: ps}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	durs := make([]time.Duration, total)
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				t0 := time.Now()
				resp, err := http.Get(base + portalLoadMix[i%len(portalLoadMix)])
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					firstErr.CompareAndSwap(nil,
						fmt.Errorf("%s: status %d", portalLoadMix[i%len(portalLoadMix)], resp.StatusCode))
					return
				}
				durs[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return err
	}

	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pct := func(p float64) time.Duration { return durs[int(p*float64(total-1))] }
	vals := telemetry.ParseExposition(reg.Exposition())
	var hits, misses float64
	for name, v := range vals {
		if strings.HasPrefix(name, "gostats_portal_cache_hits_total") {
			hits += v
		} else if strings.HasPrefix(name, "gostats_portal_cache_misses_total") {
			misses += v
		}
	}
	fmt.Printf("simcluster portal-load: %d requests, %d readers in %.2fs = %.0f req/s\n",
		total, readers, elapsed.Seconds(), float64(total)/elapsed.Seconds())
	fmt.Printf("simcluster portal-load: latency p50=%s p95=%s max=%s\n",
		pct(0.50), pct(0.95), durs[total-1])
	if hits+misses > 0 {
		fmt.Printf("simcluster portal-load: cache hits=%.0f misses=%.0f (%.1f%% hit ratio)\n",
			hits, misses, 100*hits/(hits+misses))
	}
	if rec != nil {
		resp, err := http.Get(base + "/api/lag")
		if err != nil {
			return fmt.Errorf("/api/lag: %w", err)
		}
		var sum trace.LagSummary
		err = json.NewDecoder(resp.Body).Decode(&sum)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("/api/lag: %w", err)
		}
		fmt.Printf("simcluster portal-load: /api/lag serves %d pipeline stages, %d hosts, %d partitions\n",
			len(sum.Stages), len(sum.Hosts), len(sum.Partitions))
		if len(sum.Partitions) > 0 {
			worst := sum.Partitions[0]
			for _, p := range sum.Partitions {
				if p.MaxFreshnessSeconds > worst.MaxFreshnessSeconds {
					worst = p
				}
			}
			fmt.Printf("simcluster portal-load: stalest partition p%03d: %d hosts, max freshness %.2f s\n",
				worst.Partition, worst.Hosts, worst.MaxFreshnessSeconds)
		}
	}
	return nil
}

// apiJobMix is the job-table side of the -portal-readers workload:
// paginated lists, ordered pages, and bounded-heap rankings.
var apiJobMix = [...]string{
	"/api/v1/jobs?limit=50",
	"/api/v1/jobs?order_by=-runtime&limit=20",
	"/api/v1/jobs?order_by=starttime&offset=20&limit=20",
	"/api/v1/jobs?field1=nodes&op1=gte&val1=2&limit=25",
	"/api/v1/top/jobs?field=runtime&n=10",
	"/api/v1/top/jobs?field=nodehours&n=5&order=bottom",
}

// apiMetricMix extends the workload with the tsdb-backed routes when a
// durable store is attached; the full-span time ranges reach behind the
// hot boundary and exercise the indexed cold-read path.
func apiMetricMix(span float64) []string {
	return []string{
		fmt.Sprintf("/api/v1/metrics?group_by=host&agg=avg&step=3600&start=0&end=%g", span),
		fmt.Sprintf("/api/v1/metrics?group_by=host,devtype&agg=sum&step=7200&start=0&end=%g", span/2),
		fmt.Sprintf("/api/v1/top/hosts?n=5&agg=max&start=0&end=%g", span),
		"/api/v1/gauges?devtype=cpu",
	}
}

// nullRecorder is the response sink for direct in-process API requests:
// status plus byte count, no buffering — ten thousand concurrent
// readers must not each hold a response body.
type nullRecorder struct {
	header http.Header
	status int
	bytes  int
}

func (w *nullRecorder) Header() http.Header { return w.header }
func (w *nullRecorder) WriteHeader(c int)   { w.status = c }
func (w *nullRecorder) Write(p []byte) (int, error) {
	w.bytes += len(p)
	return len(p), nil
}

// runAPILoad drives `readers` concurrent clients through `total`
// requests of the mixed /api/v1 workload against an in-process portal
// over the freshly built job table and the run's live tsdb. Requests go
// straight through ServeHTTP — no sockets — so reader concurrency is
// bounded by goroutines, not file descriptors. Each reader carries its
// own X-Client-ID; every tenth reader shares one id so the token-bucket
// limiter demonstrably fires under the pile-up. 429s are counted, never
// fatal, and (because the limiter wraps outside the cache) never
// populate or evict cache entries.
func runAPILoad(db *reldb.DB, tdb *tsdb.DB, readers, total int, span float64) error {
	if total <= 0 {
		return fmt.Errorf("-portal-requests must be positive, got %d", total)
	}
	reg := telemetry.NewRegistry()
	ps := portal.NewServer(db, chip.StampedeNode().Registry(), nil)
	ps.Metrics = reg
	ps.TSDB = tdb
	ps.Limiter = portal.NewLimiter(200, 50)
	mix := append([]string(nil), apiJobMix[:]...)
	if tdb != nil {
		mix = append(mix, apiMetricMix(span)...)
	}

	var limited atomic.Int64
	var firstErr atomic.Value
	var mu sync.Mutex
	var durs []time.Duration
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		id := fmt.Sprintf("reader-%d", r)
		if r%10 == 0 {
			id = "shared-hot-client"
		}
		// Strided fixed assignment — each reader is one client issuing
		// its own request stream, so a fast goroutine cannot burn
		// another client's token budget.
		go func(r int) {
			defer wg.Done()
			var local []time.Duration
			for i := r; i < total; i += readers {
				path := mix[i%len(mix)]
				req := httptest.NewRequest(http.MethodGet, path, nil)
				req.Header.Set("X-Client-ID", id)
				w := &nullRecorder{header: make(http.Header), status: http.StatusOK}
				t0 := time.Now()
				ps.ServeHTTP(w, req)
				switch w.status {
				case http.StatusOK:
					local = append(local, time.Since(t0))
				case http.StatusTooManyRequests:
					limited.Add(1)
				default:
					firstErr.CompareAndSwap(nil, fmt.Errorf("%s: status %d", path, w.status))
					return
				}
			}
			mu.Lock()
			durs = append(durs, local...)
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return err
	}
	if len(durs) == 0 {
		return fmt.Errorf("api load: every request was rate limited")
	}

	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pct := func(p float64) time.Duration { return durs[int(p*float64(len(durs)-1))] }
	vals := telemetry.ParseExposition(reg.Exposition())
	var hits, misses float64
	for name, v := range vals {
		if strings.HasPrefix(name, "gostats_portal_cache_hits_total") {
			hits += v
		} else if strings.HasPrefix(name, "gostats_portal_cache_misses_total") {
			misses += v
		}
	}
	fmt.Printf("simcluster api-load: %d requests (%d served, %d rate-limited), %d readers in %.2fs = %.0f req/s\n",
		total, len(durs), limited.Load(), readers, elapsed.Seconds(), float64(total)/elapsed.Seconds())
	fmt.Printf("simcluster api-load: latency p50=%s p95=%s max=%s\n",
		pct(0.50), pct(0.95), durs[len(durs)-1])
	if hits+misses > 0 {
		fmt.Printf("simcluster api-load: cache hits=%.0f misses=%.0f (%.1f%% hit ratio)\n",
			hits, misses, 100*hits/(hits+misses))
	}
	if rl := vals["gostats_portal_ratelimited_total"]; rl != float64(limited.Load()) {
		return fmt.Errorf("api load: limiter counter %v disagrees with observed 429s %d", rl, limited.Load())
	}
	// The cold-read path's own telemetry (index hits vs full scans,
	// block-cache effectiveness) lands in the default registry.
	if tdb != nil {
		sv := telemetry.ParseExposition(telemetry.Default().Exposition())
		fmt.Printf("simcluster api-load: segment index hits=%.0f fullscans=%.0f; block cache hits=%.0f misses=%.0f evictions=%.0f\n",
			sv["gostats_segstore_index_hits_total"], sv["gostats_segstore_index_fullscans_total"],
			sv["gostats_segstore_blockcache_hits_total"], sv["gostats_segstore_blockcache_misses_total"],
			sv["gostats_segstore_blockcache_evictions_total"])
	}
	return nil
}

// printOverheadSummary reports the fleet's self-measured monitoring cost
// against the paper's budget (§III: ~0.09 s of one core per collection,
// <0.02% overhead at 10-minute sampling). With an ops server running it
// scrapes its own /metrics endpoint — the same view an external
// Prometheus would get — otherwise it reads the in-process registry.
func printOverheadSummary(ops *telemetry.OpsServer, nodes int, spanSec float64) {
	var text string
	if ops != nil {
		resp, err := http.Get(ops.URL() + "/metrics")
		if err != nil {
			log.Printf("simcluster: telemetry scrape: %v", err)
			return
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Printf("simcluster: telemetry scrape: %v", err)
			return
		}
		text = string(b)
	} else {
		text = telemetry.Default().Exposition()
	}
	vals := telemetry.ParseExposition(text)
	count := vals["gostats_collect_seconds_count"]
	sum := vals["gostats_collect_seconds_sum"]
	if count == 0 {
		fmt.Println("simcluster overhead: no collections recorded")
		return
	}
	const (
		budgetPerSweep = 0.09   // paper §III: seconds of one core per collection
		budgetFraction = 0.0002 // paper §III: <0.02% of one core
	)
	mean := sum / count
	verdict := func(ok bool) string {
		if ok {
			return "within budget"
		}
		return "OVER BUDGET"
	}
	fmt.Printf("simcluster overhead: %.0f collections, mean %.4f s each (paper budget %.2f s) — %s\n",
		count, mean, budgetPerSweep, verdict(mean <= budgetPerSweep))
	frac := sum / (float64(nodes) * spanSec)
	fmt.Printf("simcluster overhead: %.1f collector-seconds over %.0f node-seconds = %.4f%% of one core (paper: <%.2f%%) — %s\n",
		sum, float64(nodes)*spanSec, frac*100, budgetFraction*100, verdict(frac <= budgetFraction))
}

// wireLedger accounts the actual bytes-on-wire per snapshot and, from a
// bounded sample of the decoded stream, what the same snapshots cost in
// each codec — so one run shows the text/binary trade.
type wireLedger struct {
	reg *schema.Registry

	mu        sync.Mutex
	count     int64
	bytes     int64
	ver       codec.Version
	sampled   int64
	textBytes int64
	binBytes  int64
}

// wireSampleMax bounds the re-encoded comparison sample; beyond a few
// hundred snapshots the per-codec averages are stable.
const wireSampleMax = 256

// observe books one delivered message's actual codec and size.
func (l *wireLedger) observe(v codec.Version, wireBytes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count++
	l.bytes += int64(wireBytes)
	l.ver = v
}

// sample re-encodes one decoded snapshot in both codecs for the
// comparative per-snapshot averages.
func (l *wireLedger) sample(s model.Snapshot) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sampled >= wireSampleMax {
		return
	}
	tb, terr := codec.EncodeWire(s, l.reg, codec.V1Text)
	bb, berr := codec.EncodeWire(s, l.reg, codec.V2Binary)
	if terr != nil || berr != nil {
		return
	}
	l.textBytes += int64(len(tb))
	l.binBytes += int64(len(bb))
	l.sampled++
}

// print emits the wire summary lines.
func (l *wireLedger) print() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return
	}
	name := "gob"
	if l.ver != 0 {
		name = l.ver.String()
	}
	fmt.Printf("simcluster wire: %d snapshots over codec %s, %d bytes on wire (%.0f B/snap)\n",
		l.count, name, l.bytes, float64(l.bytes)/float64(l.count))
	if l.sampled > 0 {
		t := float64(l.textBytes) / float64(l.sampled)
		b := float64(l.binBytes) / float64(l.sampled)
		fmt.Printf("simcluster wire: per-snapshot cost by codec (sample of %d): text=%.0f B, binary=%.0f B (%.1fx smaller)\n",
			l.sampled, t, b, t/b)
	}
}

type cronSink struct{ logger *rawfile.NodeLogger }

func (s cronSink) Handle(snap model.Snapshot) error { return s.logger.Log(snap) }
func (s cronSink) Close() error                     { return s.logger.Close() }

type daemonSink struct {
	pub    broker.SnapshotPublisher
	client *broker.Client
}

func (s daemonSink) Handle(snap model.Snapshot) error { return s.pub.Publish(snap) }
func (s daemonSink) Close() error                     { return s.client.Close() }

// chaosPolicy is the transport policy for chaos runs: production shape,
// compressed delays, so a simulated multi-round outage resolves in wall
// milliseconds.
func chaosPolicy() broker.Policy {
	return broker.Policy{
		MaxAttempts:      4,
		DialTimeout:      2 * time.Second,
		WriteTimeout:     5 * time.Second,
		AckTimeout:       5 * time.Second,
		BackoffMin:       5 * time.Millisecond,
		BackoffMax:       250 * time.Millisecond,
		BackoffFactor:    2,
		Jitter:           0.2,
		BreakerThreshold: 3,
		BreakerWindow:    100 * time.Millisecond,
		BreakerMaxWindow: 2 * time.Second,
	}
}

// snapKey identifies one snapshot for conservation accounting. Confirmed
// publishes can duplicate a snapshot but never change it, so identity by
// (host, time, mark) is exact.
func snapKey(s model.Snapshot) string {
	return fmt.Sprintf("%s@%.3f#%s", s.Host, s.Time, s.Mark)
}

// chaosController owns the fault schedule and the conservation ledger of
// a chaos run: every snapshot a node emits is recorded on the way into
// the transport, every snapshot the listener archives on the way out,
// and whatever the outage stranded must still sit in a node spool.
type chaosController struct {
	net        *faultnet.Network
	start, end float64 // outage window in simulated seconds

	mu         sync.Mutex
	started    bool
	stopped    bool
	emitted    map[string]bool
	collected  map[string]bool
	lastSeen   map[string]float64 // per-host max first-occurrence time
	duplicates int
	disorder   []string
	pubs       []*broker.ReliablePublisher
	spools     []*spool.Spool
}

func newChaosController(n *faultnet.Network, start, end float64) *chaosController {
	return &chaosController{
		net:       n,
		start:     start,
		end:       end,
		emitted:   map[string]bool{},
		collected: map[string]bool{},
		lastSeen:  map[string]float64{},
	}
}

func (c *chaosController) track(pub *broker.ReliablePublisher, sp *spool.Spool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pubs = append(c.pubs, pub)
	c.spools = append(c.spools, sp)
}

// observe runs before each node publish: it books the snapshot as
// emitted and drives the outage gate off simulated time, so the window
// hits the same collection rounds regardless of wall-clock speed.
func (c *chaosController) observe(s model.Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.emitted[snapKey(s)] = true
	if !c.started && s.Time >= c.start {
		c.started = true
		c.net.StartOutage()
		fmt.Printf("simcluster chaos: broker outage begins at t=%.0f\n", s.Time)
	}
	if c.started && !c.stopped && s.Time >= c.end {
		c.stopped = true
		c.net.StopOutage()
		fmt.Printf("simcluster chaos: broker outage ends at t=%.0f\n", s.Time)
	}
}

// collect runs on the listener for every archived snapshot. Duplicates
// (confirmed-publish retries) are counted but only the first occurrence
// participates in the per-host ordering check: nodes publish in time
// order and spool replay is FIFO, so first deliveries must arrive
// non-decreasing per host.
func (c *chaosController) collect(s model.Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := snapKey(s)
	if c.collected[k] {
		c.duplicates++
		return
	}
	c.collected[k] = true
	if last, ok := c.lastSeen[s.Host]; ok && s.Time < last {
		c.disorder = append(c.disorder,
			fmt.Sprintf("%s: t=%.0f delivered after t=%.0f", s.Host, s.Time, last))
	} else {
		c.lastSeen[s.Host] = s.Time
	}
}

// waitDrained blocks until every node spool has replayed its backlog,
// or the timeout passes (leftovers then count as spool-resident in the
// conservation check, not as loss).
func (c *chaosController) waitDrained(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		depth := 0
		c.mu.Lock()
		for _, sp := range c.spools {
			depth += sp.Depth()
		}
		c.mu.Unlock()
		if depth == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// report enumerates what the outage stranded, checks conservation
// (emitted == archived ∪ still-spooled) and per-host ordering, prints
// the ledger, and returns an error on any violation.
func (c *chaosController) report() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The publishers are closed (their drainers stopped); whatever is
	// left in the spools is durable, replayable data — enumerate it.
	spoolResident := map[string]bool{}
	for _, sp := range c.spools {
		_, err := sp.Drain(func(s model.Snapshot) error {
			spoolResident[snapKey(s)] = true
			return nil
		})
		if err != nil {
			return fmt.Errorf("chaos: reading spool remainder: %w", err)
		}
		sp.Close()
	}
	var st broker.TransportStats
	for _, pub := range c.pubs {
		ps := pub.TransportStats()
		st.Published += ps.Published
		st.Redials += ps.Redials
		st.Dropped += ps.Dropped
		st.Spooled += ps.Spooled
		st.Replayed += ps.Replayed
		st.BytesOnWire += ps.BytesOnWire
	}
	var missing []string
	for k := range c.emitted {
		if !c.collected[k] && !spoolResident[k] {
			missing = append(missing, k)
		}
	}
	sort.Strings(missing)
	fmt.Printf("simcluster chaos: emitted=%d archived=%d spool_remaining=%d duplicates=%d missing=%d\n",
		len(c.emitted), len(c.collected), len(spoolResident), c.duplicates, len(missing))
	delivered := st.Published + st.Replayed
	perSnap := 0.0
	if delivered > 0 {
		perSnap = float64(st.BytesOnWire) / float64(delivered)
	}
	fmt.Printf("simcluster chaos: transport published=%d redials=%d spooled=%d replayed=%d dropped=%d bytes_on_wire=%d (%.0f B/snap); faults %+v\n",
		st.Published, st.Redials, st.Spooled, st.Replayed, st.Dropped,
		st.BytesOnWire, perSnap, c.net.Stats())
	if len(missing) > 0 {
		n := len(missing)
		if n > 10 {
			missing = missing[:10]
		}
		return fmt.Errorf("chaos: %d snapshots lost (e.g. %v)", n, missing)
	}
	if len(c.disorder) > 0 {
		return fmt.Errorf("chaos: %d per-host ordering violations (e.g. %s)",
			len(c.disorder), c.disorder[0])
	}
	fmt.Println("simcluster chaos: conservation holds — zero snapshots lost")
	return nil
}

// chaosSink publishes through the fault domain with a durable spool
// fallback, booking every snapshot with the controller first.
type chaosSink struct {
	ctl *chaosController
	pub *broker.ReliablePublisher
}

func (s chaosSink) Handle(snap model.Snapshot) error {
	s.ctl.observe(snap)
	return s.pub.Publish(snap)
}

// Close stops the publisher (and its drainer); the spool stays open for
// the controller's final accounting.
func (s chaosSink) Close() error { return s.pub.Close() }

// fabricController is the conservation ledger of a fabric run: every
// snapshot emitted into the shared publisher, every first archive out
// of the deduplicating consumer group. Because the group dedups by
// (host, sequence) before the listener runs, any duplicate reaching
// collect is a dedup failure, not a tolerated retry.
type fabricController struct {
	mu         sync.Mutex
	emitted    map[string]bool
	collected  map[string]bool
	lastSeen   map[string]float64
	duplicates int
	disorder   []string
}

func (c *fabricController) observe(s model.Snapshot) {
	c.mu.Lock()
	c.emitted[snapKey(s)] = true
	c.mu.Unlock()
}

// collect books one archived snapshot. Per-host order inversions are
// tracked but tolerated: a host's partition is drained from replica
// owners in parallel, so first occurrences can interleave when a
// replay lands behind live traffic.
func (c *fabricController) collect(s model.Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := snapKey(s)
	if c.collected[k] {
		c.duplicates++
		return
	}
	c.collected[k] = true
	if last, ok := c.lastSeen[s.Host]; ok && s.Time < last {
		c.disorder = append(c.disorder,
			fmt.Sprintf("%s: t=%.0f delivered after t=%.0f", s.Host, s.Time, last))
	} else {
		c.lastSeen[s.Host] = s.Time
	}
}

// caughtUp reports whether every emitted snapshot has been archived.
func (c *fabricController) caughtUp() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.collected) >= len(c.emitted)
}

func (c *fabricController) archivedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.collected)
}

// report checks fabric conservation — emitted == archived + still
// spooled, zero duplicates past dedup — prints the transport and group
// ledgers, and (after a broker kill) verifies the map rebalanced.
func (c *fabricController) report(sp *spool.Spool, pst fabric.PublisherStats, gst fabric.GroupStats, mapVersion uint64, victim string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	spoolResident := map[string]bool{}
	if sp != nil {
		if _, err := sp.Drain(func(s model.Snapshot) error {
			spoolResident[snapKey(s)] = true
			return nil
		}); err != nil {
			return fmt.Errorf("fabric: reading spool remainder: %w", err)
		}
		sp.Close()
	}
	var missing []string
	for k := range c.emitted {
		if !c.collected[k] && !spoolResident[k] {
			missing = append(missing, k)
		}
	}
	sort.Strings(missing)
	fmt.Printf("simcluster fabric: emitted=%d archived=%d spool_remaining=%d dup_past_dedup=%d missing=%d\n",
		len(c.emitted), len(c.collected), len(spoolResident), c.duplicates, len(missing))
	fmt.Printf("simcluster fabric: publisher published=%d spooled=%d replayed=%d rerouted=%d dropped=%d bytes_on_wire=%d\n",
		pst.Published, pst.Spooled, pst.Replayed, pst.Rerouted, pst.Dropped, pst.BytesOnWire)
	fmt.Printf("simcluster fabric: group delivered=%d handled=%d deduped=%d consumer_restarts=%d\n",
		gst.Delivered, gst.Handled, gst.Deduped, gst.Restarts)
	if len(missing) > 0 {
		n := len(missing)
		if n > 10 {
			missing = missing[:10]
		}
		return fmt.Errorf("fabric: %d snapshots lost (e.g. %v)", n, missing)
	}
	if c.duplicates > 0 {
		return fmt.Errorf("fabric: %d duplicate snapshots got past (host, seq) dedup", c.duplicates)
	}
	if victim != "" {
		if mapVersion < 2 {
			return fmt.Errorf("fabric: broker %s was killed but the partition map never rebalanced (still v%d)", victim, mapVersion)
		}
		fmt.Printf("simcluster fabric: rebalanced off killed broker %s (map now v%d)\n", victim, mapVersion)
	}
	if len(c.disorder) > 0 {
		fmt.Printf("simcluster fabric: %d per-host order inversions tolerated across replicated delivery (e.g. %s)\n",
			len(c.disorder), c.disorder[0])
	}
	fmt.Println("simcluster fabric: conservation holds — every emitted snapshot archived or spooled")
	return nil
}

// fabricSink books each snapshot with the conservation ledger and hands
// it to the shared replicated publisher. Close is a no-op: the shared
// publisher outlives every sink and is closed once after the drain.
type fabricSink struct {
	ctl *fabricController
	pub *fabric.Publisher
}

func (s fabricSink) Handle(snap model.Snapshot) error {
	s.ctl.observe(snap)
	return s.pub.Publish(snap)
}

func (s fabricSink) Close() error { return nil }
