// Command jobetl is the nightly pipeline (§IV-A): it reads every host's
// archived raw files from the central store, maps snapshots to jobs,
// computes the Table I metrics for each complete job, and writes the job
// table for the portal.
//
// Usage:
//
//	jobetl -store ./central -out jobs.gob [-acct accounting.log] [-arch stampede]
package main

import (
	"flag"
	"fmt"
	"log"

	"gostats/internal/acct"
	"gostats/internal/chip"
	"gostats/internal/etl"
	"gostats/internal/rawfile"
	"gostats/internal/reldb"
)

func main() {
	storeDir := flag.String("store", "central", "central raw store directory")
	out := flag.String("out", "jobs.gob", "output job table")
	acctPath := flag.String("acct", "", "scheduler accounting log to join metadata from")
	arch := flag.String("arch", "stampede", "node type the fleet runs")
	flag.Parse()

	var cfg = chip.StampedeNode()
	switch *arch {
	case "stampede":
	case "lonestar":
		cfg = chip.LonestarNode()
	case "largemem":
		cfg = chip.LargeMemNode()
	default:
		log.Fatalf("jobetl: unknown arch %q", *arch)
	}

	store, err := rawfile.NewStore(*storeDir)
	if err != nil {
		log.Fatalf("jobetl: %v", err)
	}
	var meta map[string]etl.Meta
	if *acctPath != "" {
		recs, err := acct.LoadFile(*acctPath)
		if err != nil {
			log.Fatalf("jobetl: %v", err)
		}
		meta = make(map[string]etl.Meta, len(recs))
		for _, r := range recs {
			meta[r.JobID] = etl.MetaFromAcct(r)
		}
	}
	db := reldb.New()
	ids, err := etl.IngestStore(store, cfg.Registry(), meta, db)
	if err != nil {
		log.Fatalf("jobetl: %v", err)
	}
	if err := db.Save(*out); err != nil {
		log.Fatalf("jobetl: %v", err)
	}
	fmt.Printf("jobetl: ingested %d jobs into %s\n", len(ids), *out)
	for _, id := range ids {
		row := db.Get(id)
		fmt.Printf("  job %-10s hosts=%d CPU_Usage=%.2f flops=%.3g/s MetaDataRate=%.4g/s\n",
			id, len(row.Hosts), row.Metrics.CPUUsage, row.Metrics.Flops, row.Metrics.MetaDataRate)
	}
}
