// Command jobetl is the nightly pipeline (§IV-A): it reads every host's
// archived raw files from the central store, maps snapshots to jobs,
// computes the Table I metrics for each complete job, and writes the job
// table for the portal.
//
// Usage:
//
//	jobetl -store ./central -out jobs.gob [-acct accounting.log] [-arch stampede]
//	       [-journal jobs.jnl]
//
// With -journal set, previously journaled rows are replayed before the
// run and every finalized row is appended to the crash-safe journal as
// it is produced; the gob written by -out becomes a derived export of
// the same table. The journal survives kill -9 mid-run (losing at most
// the row being appended); the gob is written atomically at the end.
package main

import (
	"flag"
	"fmt"
	"log"

	"gostats/internal/acct"
	"gostats/internal/chip"
	"gostats/internal/etl"
	"gostats/internal/rawfile"
	"gostats/internal/reldb"
)

func main() {
	storeDir := flag.String("store", "central", "central raw store directory")
	out := flag.String("out", "jobs.gob", "output job table")
	acctPath := flag.String("acct", "", "scheduler accounting log to join metadata from")
	arch := flag.String("arch", "stampede", "node type the fleet runs")
	journalPath := flag.String("journal", "", "crash-safe job journal to replay and append to (optional)")
	flag.Parse()

	var cfg = chip.StampedeNode()
	switch *arch {
	case "stampede":
	case "lonestar":
		cfg = chip.LonestarNode()
	case "largemem":
		cfg = chip.LargeMemNode()
	default:
		log.Fatalf("jobetl: unknown arch %q", *arch)
	}

	store, err := rawfile.NewStore(*storeDir)
	if err != nil {
		log.Fatalf("jobetl: %v", err)
	}
	var meta map[string]etl.Meta
	if *acctPath != "" {
		recs, err := acct.LoadFile(*acctPath)
		if err != nil {
			log.Fatalf("jobetl: %v", err)
		}
		meta = make(map[string]etl.Meta, len(recs))
		for _, r := range recs {
			meta[r.JobID] = etl.MetaFromAcct(r)
		}
	}
	db := reldb.New()
	var jnl *reldb.Journal
	if *journalPath != "" {
		jnl, err = reldb.OpenJournal(*journalPath, db, false)
		if err != nil {
			log.Fatalf("jobetl: %v", err)
		}
		if rows, trunc := jnl.Replayed(); rows > 0 || trunc > 0 {
			fmt.Printf("jobetl: journal replayed %d rows (%d torn frames truncated)\n", rows, trunc)
		}
	}
	ids, err := etl.IngestStoreJournaled(store, cfg.Registry(), meta, db, jnl)
	if err != nil {
		log.Fatalf("jobetl: %v", err)
	}
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			log.Fatalf("jobetl: journal close: %v", err)
		}
	}
	if err := db.Save(*out); err != nil {
		log.Fatalf("jobetl: %v", err)
	}
	fmt.Printf("jobetl: ingested %d jobs into %s\n", len(ids), *out)
	for _, id := range ids {
		row := db.Get(id)
		fmt.Printf("  job %-10s hosts=%d CPU_Usage=%.2f flops=%.3g/s MetaDataRate=%.4g/s\n",
			id, len(row.Hosts), row.Metrics.CPUUsage, row.Metrics.Flops, row.Metrics.MetaDataRate)
	}
}
