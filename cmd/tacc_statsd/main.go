// Command tacc_statsd is the daemon-mode node agent (Fig 2): it runs a
// simulated node under a chosen workload, collects every interval, and
// publishes each snapshot to the broker in real time.
//
// The -speedup flag compresses simulated time: with -interval 600 and
// -speedup 600, one simulated 10-minute interval elapses per wall second.
//
// Usage:
//
//	tacc_statsd -broker 127.0.0.1:5672 [-host c401-101] [-job 4001]
//	            [-workload wrf|storm|idle] [-interval 600] [-speedup 600]
//	            [-ticks 12] [-codec binary] [-telemetry 127.0.0.1:9101]
//	            [-spool /var/spool/gostats] [-spool-max-bytes N]
//	            [-spool-max-age SECONDS] [-spool-sync]
//
// With -spool set, snapshots the broker cannot accept are written to a
// crash-safe on-disk spool and replayed in order when the broker comes
// back — a broker outage costs latency, not data. Without it, an
// undeliverable snapshot is dropped after the publish attempts are
// exhausted.
//
// With -telemetry set, the daemon serves its own ops endpoint: /metrics
// (collection cost, publish latency, redials), /healthz (collector and
// publisher readiness), /debug/vars and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"gostats/internal/broker"
	"gostats/internal/chip"
	"gostats/internal/codec"
	"gostats/internal/collect"
	"gostats/internal/hwsim"
	"gostats/internal/spool"
	"gostats/internal/telemetry"
	"gostats/internal/workload"
)

func pickModel(name, owner string) (workload.Model, error) {
	switch name {
	case "wrf":
		return workload.Steady{Label: "wrf", P: workload.WRFProfile(owner)}, nil
	case "storm":
		return workload.PathologicalWRF(owner), nil
	case "idle":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func main() {
	brokerAddr := flag.String("broker", "127.0.0.1:5672", "broker address")
	host := flag.String("host", "c401-101", "hostname of the simulated node")
	job := flag.String("job", "4001", "job id to label collections with")
	wl := flag.String("workload", "wrf", "workload: wrf, storm, idle")
	interval := flag.Float64("interval", 600, "sampling interval (simulated seconds)")
	speedup := flag.Float64("speedup", 600, "simulated seconds per wall second")
	ticks := flag.Int("ticks", 12, "number of collections before exit (0 = forever)")
	seed := flag.Int64("seed", 1, "node determinism seed")
	spoolDir := flag.String("spool", "", "durable spool directory for undeliverable snapshots (empty = drop)")
	spoolMax := flag.Int64("spool-max-bytes", spool.DefaultMaxBytes,
		"spool size cap; oldest segments are evicted past it (-1 = unlimited)")
	spoolAge := flag.Float64("spool-max-age", 0,
		"evict spooled snapshots older than this many seconds (0 = unlimited)")
	spoolSync := flag.Bool("spool-sync", false, "fsync the spool after every append")
	codecName := flag.String("codec", "text", "wire and spool codec: text (v1) or binary (v2)")
	telemetryAddr := flag.String("telemetry", "", "ops endpoint address (empty = disabled)")
	flag.Parse()

	wireCodec, err := codec.ParseVersion(*codecName)
	if err != nil {
		log.Fatalf("tacc_statsd: %v", err)
	}

	var ops *telemetry.OpsServer
	if *telemetryAddr != "" {
		var err error
		ops, err = telemetry.Serve(*telemetryAddr, telemetry.Default())
		if err != nil {
			log.Fatalf("tacc_statsd: %v", err)
		}
		defer ops.Close()
		ops.SetHealth("collector", nil)
		ops.SetHealth("publisher", nil)
		log.Printf("tacc_statsd: telemetry at %s/metrics", ops.URL())
	}

	model, err := pickModel(*wl, "u001")
	if err != nil {
		log.Fatalf("tacc_statsd: %v", err)
	}
	node, err := hwsim.NewNode(*host, chip.StampedeNode(), *seed)
	if err != nil {
		log.Fatalf("tacc_statsd: %v", err)
	}
	node.Advance(86400, hwsim.IdleDemand())

	// The daemon's publisher backs off and redials across broker
	// restarts. Without a spool a dead broker costs at most the current
	// interval's sample; with one, the sample waits on disk instead.
	col := collect.New(node)
	pub := broker.NewReliablePublisher(*brokerAddr, broker.StatsQueue)
	pub.Codec = wireCodec
	pub.Registry = chip.StampedeNode().Registry()
	if *spoolDir != "" {
		sp, err := spool.Open(*spoolDir, col.Header(), spool.Options{
			MaxBytes: *spoolMax,
			MaxAge:   *spoolAge,
			Sync:     *spoolSync,
			Codec:    wireCodec,
		})
		if err != nil {
			log.Fatalf("tacc_statsd: open spool: %v", err)
		}
		defer sp.Close()
		pub.AttachSpool(sp)
		log.Printf("tacc_statsd: spooling undeliverable snapshots under %s", *spoolDir)
	}
	defer pub.Close()
	agent := collect.NewDaemonAgent(col, pub)

	rng := rand.New(rand.NewSource(*seed))
	runtime := float64(*ticks) * *interval
	if *ticks == 0 {
		runtime = 1e12
	}
	now, elapsed := 0.0, 0.0
	var jobs []string
	if *job != "" {
		jobs = []string{*job}
	}
	log.Printf("tacc_statsd: %s publishing to %s every %.0f simulated seconds", *host, *brokerAddr, *interval)
	for i := 0; *ticks == 0 || i < *ticks; i++ {
		// The real daemon sleeps; we sleep the compressed interval.
		if *speedup > 0 {
			time.Sleep(time.Duration(*interval / *speedup * float64(time.Second)))
		}
		d := hwsim.IdleDemand()
		if model != nil {
			d = model.Demand(elapsed, runtime, 0, 1, rng)
		}
		node.Advance(*interval, d)
		now += *interval
		elapsed += *interval
		if err := agent.Tick(now, jobs, ""); err != nil {
			if ops != nil {
				ops.SetHealth("publisher", err)
			}
			log.Printf("tacc_statsd: %v (sample lost — exhausted attempts and no spool accepted it)", err)
			continue
		}
		if ops != nil {
			ops.SetHealth("publisher", nil)
		}
		log.Printf("tacc_statsd: published collection %d at t=%.0f", i+1, now)
	}
}
