// Command tacc_statsd is the daemon-mode node agent (Fig 2): it runs a
// simulated node under a chosen workload, collects every interval, and
// publishes each snapshot to the broker in real time.
//
// The -speedup flag compresses simulated time: with -interval 600 and
// -speedup 600, one simulated 10-minute interval elapses per wall second.
//
// Usage:
//
//	tacc_statsd -broker 127.0.0.1:5672 [-host c401-101] [-job 4001]
//	            [-workload wrf|storm|idle] [-interval 600] [-speedup 600]
//	            [-ticks 12] [-codec binary] [-telemetry 127.0.0.1:9101]
//	            [-spool /var/spool/gostats] [-spool-max-bytes N]
//	            [-spool-max-age SECONDS] [-spool-sync]
//
// Fabric (multi-broker) mode:
//
//	tacc_statsd -brokers host1:5672,host2:5672,host3:5672 ...
//
// With -brokers set, the daemon publishes through the partitioned
// fabric instead of a single broker: it bootstraps the partition map
// from the first reachable broker, routes each snapshot to its host's
// partition, and requires confirms from every replica owner before an
// interval counts as delivered. A dead owner trips a breaker, the map
// rebalances, and spooled snapshots replay to the partition's current
// owners.
//
// With -spool set, snapshots the broker cannot accept are written to a
// crash-safe on-disk spool and replayed in order when the broker comes
// back — a broker outage costs latency, not data. Without it, an
// undeliverable snapshot is dropped after the publish attempts are
// exhausted.
//
// With -telemetry set, the daemon serves its own ops endpoint: /metrics
// (collection cost, publish latency, redials), /healthz (collector and
// publisher readiness), /debug/vars and /debug/pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	"gostats/internal/broker"
	"gostats/internal/chip"
	"gostats/internal/codec"
	"gostats/internal/collect"
	"gostats/internal/fabric"
	"gostats/internal/hwsim"
	"gostats/internal/model"
	"gostats/internal/pipeline"
	"gostats/internal/spool"
	"gostats/internal/telemetry"
	"gostats/internal/workload"
)

// tick is one sampling interval moving through the node pipeline:
// sample fills snap, encode fills body, publish ships it.
type tick struct {
	i            int
	now, elapsed float64
	snap         model.Snapshot
	body         []byte
}

// publisher is what both transports (single-broker reliable publisher
// and fabric publisher) provide the staged pipeline.
type publisher interface {
	collect.Publisher
	Encode(s *model.Snapshot) ([]byte, error)
	PublishEncoded(s model.Snapshot, body []byte) error
	AttachSpool(sp *spool.Spool)
	Close() error
}

// bootstrapMap fetches the partition map from the first fabric broker
// that answers.
func bootstrapMap(brokers []string) (fabric.Map, error) {
	var lastErr error
	for _, addr := range brokers {
		c, err := broker.DialTimeout(addr, 2*time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		_, payload, err := c.FetchMap()
		c.Close()
		if err != nil {
			lastErr = fmt.Errorf("broker %s: %w", addr, err)
			continue
		}
		return fabric.DecodeMap(payload)
	}
	return fabric.Map{}, fmt.Errorf("no fabric broker served a partition map: %w", lastErr)
}

func pickModel(name, owner string) (workload.Model, error) {
	switch name {
	case "wrf":
		return workload.Steady{Label: "wrf", P: workload.WRFProfile(owner)}, nil
	case "storm":
		return workload.PathologicalWRF(owner), nil
	case "idle":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func main() {
	brokerAddr := flag.String("broker", "127.0.0.1:5672", "broker address (single-broker mode)")
	brokersList := flag.String("brokers", "",
		"comma-separated fabric broker addresses (enables partitioned publish mode)")
	host := flag.String("host", "c401-101", "hostname of the simulated node")
	job := flag.String("job", "4001", "job id to label collections with")
	wl := flag.String("workload", "wrf", "workload: wrf, storm, idle")
	interval := flag.Float64("interval", 600, "sampling interval (simulated seconds)")
	speedup := flag.Float64("speedup", 600, "simulated seconds per wall second")
	ticks := flag.Int("ticks", 12, "number of collections before exit (0 = forever)")
	seed := flag.Int64("seed", 1, "node determinism seed")
	spoolDir := flag.String("spool", "", "durable spool directory for undeliverable snapshots (empty = drop)")
	spoolMax := flag.Int64("spool-max-bytes", spool.DefaultMaxBytes,
		"spool size cap; oldest segments are evicted past it (-1 = unlimited)")
	spoolAge := flag.Float64("spool-max-age", 0,
		"evict spooled snapshots older than this many seconds (0 = unlimited)")
	spoolSync := flag.Bool("spool-sync", false, "fsync the spool after every append")
	codecName := flag.String("codec", "text", "wire and spool codec: text (v1) or binary (v2)")
	telemetryAddr := flag.String("telemetry", "", "ops endpoint address (empty = disabled)")
	flag.Parse()

	wireCodec, err := codec.ParseVersion(*codecName)
	if err != nil {
		log.Fatalf("tacc_statsd: %v", err)
	}

	var ops *telemetry.OpsServer
	if *telemetryAddr != "" {
		var err error
		ops, err = telemetry.Serve(*telemetryAddr, telemetry.Default())
		if err != nil {
			log.Fatalf("tacc_statsd: %v", err)
		}
		defer ops.Close()
		ops.SetHealth("collector", nil)
		ops.SetHealth("publisher", nil)
		log.Printf("tacc_statsd: telemetry at %s/metrics", ops.URL())
	}

	wmodel, err := pickModel(*wl, "u001")
	if err != nil {
		log.Fatalf("tacc_statsd: %v", err)
	}
	node, err := hwsim.NewNode(*host, chip.StampedeNode(), *seed)
	if err != nil {
		log.Fatalf("tacc_statsd: %v", err)
	}
	node.Advance(86400, hwsim.IdleDemand())

	// The daemon's publisher backs off and redials across broker
	// restarts. Without a spool a dead broker costs at most the current
	// interval's sample; with one, the sample waits on disk instead.
	col := collect.New(node)
	var pub publisher
	target := *brokerAddr
	if *brokersList != "" {
		brokers := strings.Split(*brokersList, ",")
		for i := range brokers {
			brokers[i] = strings.TrimSpace(brokers[i])
		}
		m, err := bootstrapMap(brokers)
		if err != nil {
			log.Fatalf("tacc_statsd: %v", err)
		}
		view := fabric.NewView(m, broker.DefaultPolicy(), telemetry.Default())
		view.StartProber(2 * time.Second)
		defer view.Close()
		pool := fabric.NewClientPool(broker.DefaultPolicy())
		pool.Codec = wireCodec
		fp := fabric.NewPublisher(view, pool)
		fp.Codec = wireCodec
		fp.Registry = chip.StampedeNode().Registry()
		pub = fp
		target = fmt.Sprintf("fabric[%s] (%d partitions, replication %d)",
			*brokersList, m.Partitions, m.Replication)
	} else {
		rp := broker.NewReliablePublisher(*brokerAddr, broker.StatsQueue)
		rp.Codec = wireCodec
		rp.Registry = chip.StampedeNode().Registry()
		pub = rp
	}
	if *spoolDir != "" {
		sp, err := spool.Open(*spoolDir, col.Header(), spool.Options{
			MaxBytes: *spoolMax,
			MaxAge:   *spoolAge,
			Sync:     *spoolSync,
			Codec:    wireCodec,
		})
		if err != nil {
			log.Fatalf("tacc_statsd: open spool: %v", err)
		}
		defer sp.Close()
		pub.AttachSpool(sp)
		log.Printf("tacc_statsd: spooling undeliverable snapshots under %s", *spoolDir)
	}
	defer pub.Close()

	rng := rand.New(rand.NewSource(*seed))
	runtime := float64(*ticks) * *interval
	if *ticks == 0 {
		runtime = 1e12
	}
	var jobs []string
	if *job != "" {
		jobs = []string{*job}
	}

	// The Fig 2 node-side pipeline, staged: a tick-clock source feeds
	// sample → encode → publish. Every stage is single-worker (the
	// node model and the publisher's per-host ordering are sequential
	// by contract); the bounded queues let a slow broker overlap with
	// at most a few intervals of lookahead before backpressure holds
	// the clock. A failed encode or publish loses that sample — the
	// original deployment's failure envelope — never the daemon.
	p := pipeline.New("node", telemetry.Default())
	sample := pipeline.AddStage(p, "sample", pipeline.Options[*tick]{Queue: 4},
		func(ctx context.Context, t *tick) (*tick, error) {
			d := hwsim.IdleDemand()
			if wmodel != nil {
				d = wmodel.Demand(t.elapsed, runtime, 0, 1, rng)
			}
			node.Advance(*interval, d)
			t.snap, _ = col.Collect(t.now, jobs, "")
			return t, nil
		})
	encode := pipeline.AddStage(p, "encode", pipeline.Options[*tick]{
		Queue: 4,
		Mode:  pipeline.DropOnError,
		OnFailure: func(t *tick, err error) {
			if ops != nil {
				ops.SetHealth("publisher", err)
			}
			log.Printf("tacc_statsd: collect: publish from %s: %v (sample lost — exhausted attempts and no spool accepted it)", *host, err)
		},
	}, func(ctx context.Context, t *tick) (*tick, error) {
		body, err := pub.Encode(&t.snap)
		if err != nil {
			return nil, err
		}
		t.body = body
		return t, nil
	})
	publish := pipeline.AddSink(p, "publish", pipeline.Options[*tick]{
		Queue: 4,
		Mode:  pipeline.DropOnError,
		OnFailure: func(t *tick, err error) {
			if ops != nil {
				ops.SetHealth("publisher", err)
			}
			log.Printf("tacc_statsd: collect: publish from %s: %v (sample lost — exhausted attempts and no spool accepted it)", *host, err)
		},
	}, func(ctx context.Context, t *tick) error {
		if err := pub.PublishEncoded(t.snap, t.body); err != nil {
			return err
		}
		if ops != nil {
			ops.SetHealth("publisher", nil)
		}
		log.Printf("tacc_statsd: published collection %d at t=%.0f", t.i+1, t.now)
		return nil
	})
	sample.To(encode)
	encode.To(publish)

	ticksDone := make(chan struct{})
	p.AddSource("tick-clock", func(ctx context.Context) error {
		defer close(ticksDone)
		now, elapsed := 0.0, 0.0
		for i := 0; *ticks == 0 || i < *ticks; i++ {
			// The real daemon sleeps; we sleep the compressed interval.
			if *speedup > 0 {
				select {
				case <-time.After(time.Duration(*interval / *speedup * float64(time.Second))):
				case <-ctx.Done():
					return nil
				}
			} else if ctx.Err() != nil {
				return nil
			}
			t := &tick{i: i, now: now + *interval, elapsed: elapsed}
			now += *interval
			elapsed += *interval
			if err := sample.Submit(ctx, t); err != nil {
				return nil // pipeline stopping; the drain handles the rest
			}
		}
		return nil
	})

	log.Printf("tacc_statsd: %s publishing to %s every %.0f simulated seconds", *host, target, *interval)
	p.Start()
	sig, err := pipeline.Daemon{
		Body: func(ctx context.Context) error {
			select {
			case <-ticksDone:
				return nil
			case <-p.Fatal():
				return p.Err()
			case <-ctx.Done():
				return nil
			}
		},
		Stop: func(s os.Signal) {
			log.Printf("tacc_statsd: %v received, draining", s)
		},
	}.Run()
	dctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if derr := p.Drain(dctx); derr != nil && err == nil {
		err = derr
	}
	if err != nil {
		log.Fatalf("tacc_statsd: %v", err)
	}
	if sig != nil {
		log.Printf("tacc_statsd: drained cleanly after %v", sig)
	}
}
