// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON array, so the repo's perf trajectory can
// be tracked across PRs:
//
//	go test -bench=. -benchmem -run='^$' . | benchjson -o BENCH_PR5.json
//
// Each element records {name, iterations, ns_per_op, b_per_op,
// allocs_per_op}; lines that are not benchmark results are ignored.
//
// With -baseline pointing at a previous PR's JSON (e.g. BENCH_PR4.json),
// benchjson also diffs the fresh results against it and prints per-
// benchmark deltas, flagging ns/op regressions beyond -regress-pct.
// `-baseline auto` selects the highest-numbered BENCH_PR<N>.json in the
// current directory other than the -o target itself, so the bench
// recipe needs no per-PR edit to keep diffing against its predecessor.
// Any regression past the threshold makes benchjson exit non-zero, so
// the diff can gate CI; tune -regress-pct up on noisy machines. A
// missing baseline is not an error — the first recorded suite has
// nothing to diff against.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches e.g.
//
//	BenchmarkFoo/sub-8   1234   5678.9 ns/op   42 B/op   7 allocs/op
//
// The memory columns are optional (present with -benchmem).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "",
		`previous PR's JSON to diff against ("auto" = latest BENCH_PR*.json; missing file = skip)`)
	regressPct := flag.Float64("regress-pct", 10, "ns/op increase (percent) that counts as a regression")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: read: %v", err)
	}
	if results == nil {
		results = []Result{} // emit [] rather than null for empty input
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
	}
	if *baseline == "auto" {
		*baseline = latestBaseline(*out)
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "benchjson: no prior BENCH_PR*.json found, skipping diff")
		}
	}
	if *baseline != "" {
		if diffBaseline(results, *baseline, *regressPct) > 0 {
			os.Exit(1)
		}
	}
}

// baselineName extracts the PR number from a BENCH_PR<N>.json filename.
var baselineName = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// latestBaseline picks the highest-numbered BENCH_PR<N>.json in the
// current directory, skipping the file this run writes ("" when there
// is no prior suite to diff against).
func latestBaseline(out string) string {
	matches, err := filepath.Glob("BENCH_PR*.json")
	if err != nil {
		return ""
	}
	best, bestN := "", -1
	for _, m := range matches {
		if out != "" && m == filepath.Base(out) {
			continue
		}
		sub := baselineName.FindStringSubmatch(m)
		if sub == nil {
			continue
		}
		if n, err := strconv.Atoi(sub[1]); err == nil && n > bestN {
			best, bestN = m, n
		}
	}
	return best
}

// diffBaseline prints per-benchmark ns/op deltas against a previous
// PR's JSON and returns how many regressed past the threshold. A
// missing or unreadable baseline is reported and skipped (returning
// zero): the first PR that records a suite has nothing to diff against.
func diffBaseline(results []Result, path string, regressPct float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: no baseline (%v), skipping diff\n", err)
		return 0
	}
	var base []Result
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v, skipping diff\n", path, err)
		return 0
	}
	prev := make(map[string]Result, len(base))
	for _, r := range base {
		prev[r.Name] = r
	}
	regressions := 0
	for _, r := range results {
		b, ok := prev[r.Name]
		if !ok || b.NsPerOp == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %-60s new (no baseline entry)\n", r.Name)
			continue
		}
		pct := (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		tag := ""
		if pct >= regressPct {
			tag = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-60s %12.0f -> %12.0f ns/op (%+6.1f%%)%s\n",
			r.Name, b.NsPerOp, r.NsPerOp, pct, tag)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) past %.0f%% vs %s\n",
			regressions, regressPct, path)
	} else {
		fmt.Fprintf(os.Stderr, "benchjson: no regressions past %.0f%% vs %s\n", regressPct, path)
	}
	return regressions
}
