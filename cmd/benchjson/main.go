// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON array, so the repo's perf trajectory can
// be tracked across PRs:
//
//	go test -bench=. -benchmem -run='^$' . | benchjson -o BENCH_PR4.json
//
// Each element records {name, iterations, ns_per_op, b_per_op,
// allocs_per_op}; lines that are not benchmark results are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches e.g.
//
//	BenchmarkFoo/sub-8   1234   5678.9 ns/op   42 B/op   7 allocs/op
//
// The memory columns are optional (present with -benchmem).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: read: %v", err)
	}
	if results == nil {
		results = []Result{} // emit [] rather than null for empty input
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}
