// Command tacc_stats is the one-shot collector of cron mode (Fig 1): it
// performs a full device sweep on a simulated node and either prints the
// raw stats block to stdout or appends it to a node-local spool
// directory, exactly where the real tool sits in the prolog/epilog and
// cron slots.
//
// Because the hardware layer is simulated, the node's state lives in the
// spool directory as a deterministic function of (-host, -seed, -uptime):
// repeated invocations with increasing -uptime advance the same counters.
//
// Usage:
//
//	tacc_stats [-host c401-101] [-arch stampede|lonestar|largemem]
//	           [-jobs 4001,4002] [-mark "begin 4001"] [-uptime 3600]
//	           [-busy 0.8] [-spool DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"gostats/internal/chip"
	"gostats/internal/collect"
	"gostats/internal/hwsim"
	"gostats/internal/rawfile"
)

func nodeConfig(arch string) (chip.NodeConfig, error) {
	switch arch {
	case "stampede":
		return chip.StampedeNode(), nil
	case "lonestar":
		return chip.LonestarNode(), nil
	case "largemem":
		return chip.LargeMemNode(), nil
	case "nehalem":
		// A Ranger-era part: no uncore boxes, no RAPL, four programmable
		// counters — the collector self-customizes to the reduced set.
		d, err := chip.ByArch(chip.Nehalem)
		if err != nil {
			return chip.NodeConfig{}, err
		}
		return chip.NodeConfig{
			Desc:     d,
			Topo:     chip.Topology{Sockets: 2, CoresPerSocket: 4, ThreadsPerCore: 2},
			MemBytes: 16 << 30,
		}, nil
	default:
		return chip.NodeConfig{}, fmt.Errorf("unknown node type %q", arch)
	}
}

func main() {
	host := flag.String("host", "c401-101", "hostname of the simulated node")
	arch := flag.String("arch", "stampede", "node type: stampede, lonestar, largemem, nehalem")
	jobs := flag.String("jobs", "", "comma-separated job ids running on the node")
	mark := flag.String("mark", "", `collection mark, e.g. "begin 4001"`)
	uptime := flag.Float64("uptime", 3600, "simulated seconds since boot")
	busy := flag.Float64("busy", 0.7, "simulated CPU user fraction during uptime")
	seed := flag.Int64("seed", 1, "node determinism seed")
	spool := flag.String("spool", "", "append to this spool directory instead of stdout")
	flag.Parse()

	cfg, err := nodeConfig(*arch)
	if err != nil {
		log.Fatalf("tacc_stats: %v", err)
	}
	node, err := hwsim.NewNode(*host, cfg, *seed)
	if err != nil {
		log.Fatalf("tacc_stats: %v", err)
	}
	node.Advance(*uptime, hwsim.Demand{
		CPUUserFrac: *busy, IPC: 1.2, FlopsRate: 2e10 * *busy, VecFrac: 0.4,
		LoadRate: 1e10 * *busy, L1HitFrac: 0.9, L2HitFrac: 0.05, LLCHitFrac: 0.03,
		MemBW: 1.5e10 * *busy, MemUsed: uint64(*busy * float64(cfg.MemBytes) / 2),
		MDCReqRate: 5, OSCReqRate: 10, LustreReadBW: 1e6, LustreWriteBW: 4e6,
		IBBW: 2e8 * *busy,
	})
	col := collect.New(node)
	var jobIDs []string
	if *jobs != "" {
		jobIDs = strings.Split(*jobs, ",")
	}
	snap, cost := col.Collect(*uptime, jobIDs, *mark)

	if *spool != "" {
		logger, err := rawfile.NewNodeLogger(*spool, col.Header())
		if err != nil {
			log.Fatalf("tacc_stats: %v", err)
		}
		if err := logger.Log(snap); err != nil {
			log.Fatalf("tacc_stats: %v", err)
		}
		if err := logger.Close(); err != nil {
			log.Fatalf("tacc_stats: %v", err)
		}
		fmt.Fprintf(os.Stderr, "tacc_stats: %d records appended to %s (simulated cost %.3f s)\n",
			len(snap.Records), *spool, cost)
		return
	}
	w := rawfile.NewWriter(os.Stdout, col.Header())
	if err := w.WriteSnapshot(snap); err != nil {
		log.Fatalf("tacc_stats: %v", err)
	}
	fmt.Fprintf(os.Stderr, "tacc_stats: %d records (simulated cost %.3f s)\n", len(snap.Records), cost)
}
