// Command portal serves the gostats web portal (§IV-B) over a job table
// produced by jobetl or simcluster.
//
// Usage:
//
//	portal -db jobs.gob [-listen :8080] [-store ./central]
//	       [-telemetry 127.0.0.1:9103]
//	portal -journal jobs.jnl [...]
//
// With -journal set, the job table is rebuilt by replaying the
// crash-safe journal jobetl appends to (torn tails are truncated, the
// newest finalization of each job wins) instead of loading the gob
// export. With -store set, detail pages include the Fig 5 per-node
// plots, assembled on demand from the raw archive. With -telemetry set,
// the portal serves its own ops endpoint: /metrics (request count,
// latency and status by route), /healthz, /debug/vars and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"gostats/internal/chip"
	"gostats/internal/jobmap"
	"gostats/internal/model"
	"gostats/internal/portal"
	"gostats/internal/rawfile"
	"gostats/internal/reldb"
	"gostats/internal/telemetry"
	"gostats/internal/xalt"
)

func main() {
	dbPath := flag.String("db", "jobs.gob", "job table written by jobetl")
	journalPath := flag.String("journal", "", "rebuild the job table from this crash-safe journal instead of -db")
	listen := flag.String("listen", "127.0.0.1:8080", "listen address")
	storeDir := flag.String("store", "", "raw store for detail-page plots (optional)")
	xaltPath := flag.String("xalt", "", "XALT environment store (optional)")
	telemetryAddr := flag.String("telemetry", "", "ops endpoint address (empty = disabled)")
	flag.Parse()

	if *telemetryAddr != "" {
		ops, err := telemetry.Serve(*telemetryAddr, telemetry.Default())
		if err != nil {
			log.Fatalf("portal: %v", err)
		}
		defer ops.Close()
		ops.SetHealth("portal", nil)
		fmt.Printf("portal: telemetry at %s/metrics\n", ops.URL())
	}

	var db *reldb.DB
	if *journalPath != "" {
		db = reldb.New()
		jnl, err := reldb.OpenJournal(*journalPath, db, false)
		if err != nil {
			log.Fatalf("portal: %v", err)
		}
		rows, trunc := jnl.Replayed()
		jnl.Close()
		fmt.Printf("portal: replayed %d journal rows (%d torn frames truncated)\n", rows, trunc)
	} else {
		var err error
		db, err = reldb.Load(*dbPath)
		if err != nil {
			log.Fatalf("portal: %v", err)
		}
	}
	reg := chip.StampedeNode().Registry()

	var series portal.SeriesSource
	if *storeDir != "" {
		store, err := rawfile.NewStore(*storeDir)
		if err != nil {
			log.Fatalf("portal: %v", err)
		}
		series = func(jobID string) (*model.JobData, error) {
			m, err := jobmap.FromStore(store)
			if err != nil {
				return nil, err
			}
			return m.Jobs()[jobID], nil
		}
	}
	srv := portal.NewServer(db, reg, series)
	if *xaltPath != "" {
		xdb, err := xalt.Load(*xaltPath)
		if err != nil {
			log.Fatalf("portal: %v", err)
		}
		srv.XALT = xdb
	}
	fmt.Printf("portal: %d jobs, serving on http://%s/\n", db.Len(), *listen)
	if err := http.ListenAndServe(*listen, srv); err != nil {
		log.Fatalf("portal: %v", err)
	}
}
