// Command experiments regenerates every table and figure of the paper's
// evaluation (DESIGN.md §4, E1..E12) and prints paper-vs-measured
// tables. Run with -scale full to reproduce EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-scale small|full] [-only E8]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"gostats/internal/experiments"
)

func main() {
	scale := flag.String("scale", "small", "population scale: small or full")
	only := flag.String("only", "", "run a single experiment id (e.g. E8)")
	seed := flag.Int64("seed", 0, "override the population seed (0 = default)")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.Small()
	case "full":
		sc = experiments.Full()
	default:
		log.Fatalf("experiments: unknown scale %q", *scale)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	start := time.Now()
	results, err := experiments.All(sc)
	if err != nil {
		log.Fatalf("experiments: %v", err)
	}
	for _, r := range results {
		if *only != "" && !strings.EqualFold(r.ID, *only) {
			continue
		}
		fmt.Println(r)
	}
	fmt.Printf("total: %d experiments in %s (scale=%s)\n", len(results), time.Since(start).Round(time.Millisecond), *scale)
}
