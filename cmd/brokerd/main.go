// Command brokerd runs the gostats message broker — the RabbitMQ stand-in
// of daemon mode (Fig 2). Node daemons publish raw collections to it and
// listend consumes them.
//
// Usage:
//
//	brokerd [-listen 127.0.0.1:5672]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"gostats/internal/broker"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5672", "address to listen on")
	flag.Parse()

	srv := broker.NewServer()
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("brokerd: %v", err)
	}
	fmt.Printf("brokerd: listening on %s\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("brokerd: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("brokerd: close: %v", err)
	}
}
