// Command brokerd runs the gostats message broker — the RabbitMQ stand-in
// of daemon mode (Fig 2). Node daemons publish raw collections to it and
// listend consumes them.
//
// Usage:
//
//	brokerd [-listen 127.0.0.1:5672] [-idle-timeout 0] [-ack-timeout 0]
//	        [-telemetry 127.0.0.1:9100]
//	        [-peers host1:5672,host2:5672,host3:5672]
//	        [-partitions 16] [-replication 2]
//
// With -peers set, the broker is one member of a partitioned fabric: the
// full static membership (which must include this broker's own
// advertised address) defines a consistent-hash partition map that
// publishers and listener groups fetch over the wire handshake and route
// by. The broker itself stays a plain queue server — replication is
// publisher-driven — but it serves the map, stamps its version on every
// ack, and probes dead peers so a revived broker rejoins the ring.
//
// With -telemetry set, the broker serves its own ops endpoint: /metrics
// (queue depth, published/delivered/redelivered/acked, connection count,
// frame codec latency, fabric map version and partition ownership),
// /healthz, /debug/vars and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"gostats/internal/broker"
	"gostats/internal/fabric"
	"gostats/internal/pipeline"
	"gostats/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5672", "address to listen on")
	idleTimeout := flag.Duration("idle-timeout", 0,
		"drop producer connections silent for this long (0 = never)")
	ackTimeout := flag.Duration("ack-timeout", 0,
		"requeue the in-flight message and drop consumers that fail to ack within this window (0 = never)")
	telemetryAddr := flag.String("telemetry", "", "ops endpoint address (empty = disabled)")
	peers := flag.String("peers", "",
		"comma-separated fabric membership, including this broker's own advertised address (empty = standalone)")
	partitions := flag.Int("partitions", fabric.DefaultPartitions,
		"fabric partition count (must match across the cluster)")
	replication := flag.Int("replication", fabric.DefaultReplication,
		"fabric publish replication factor")
	probeEvery := flag.Duration("probe-interval", 2*time.Second,
		"how often to probe dead fabric peers for revival")
	flag.Parse()

	srv := broker.NewServer()
	srv.IdleTimeout = *idleTimeout
	srv.AckTimeout = *ackTimeout
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("brokerd: %v", err)
	}
	fmt.Printf("brokerd: listening on %s\n", addr)

	if *peers != "" {
		members := strings.Split(*peers, ",")
		for i := range members {
			members[i] = strings.TrimSpace(members[i])
		}
		found := false
		for _, m := range members {
			if m == *listen || m == addr {
				found = true
			}
		}
		if !found {
			log.Fatalf("brokerd: -peers %q must include this broker's own address %q", *peers, *listen)
		}
		m := fabric.NewMap(members, *partitions, *replication)
		view := fabric.NewView(m, broker.DefaultPolicy(), telemetry.Default())
		srv.MapProvider = view.Provider()
		view.StartProber(*probeEvery)
		defer view.Close()
		fmt.Printf("brokerd: fabric member (%d brokers, %d partitions, replication %d)\n",
			len(members), *partitions, *replication)
	}

	if *telemetryAddr != "" {
		ops, err := telemetry.Serve(*telemetryAddr, telemetry.Default())
		if err != nil {
			log.Fatalf("brokerd: %v", err)
		}
		defer ops.Close()
		ops.SetHealth("broker", nil)
		fmt.Printf("brokerd: telemetry at %s/metrics\n", ops.URL())
	}

	// The shared daemon lifecycle: wait for SIGINT/SIGTERM, then close
	// the server (which joins every connection goroutine).
	if _, err := (pipeline.Daemon{}).Run(); err != nil {
		log.Fatalf("brokerd: %v", err)
	}
	fmt.Println("brokerd: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("brokerd: close: %v", err)
	}
}
