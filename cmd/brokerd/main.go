// Command brokerd runs the gostats message broker — the RabbitMQ stand-in
// of daemon mode (Fig 2). Node daemons publish raw collections to it and
// listend consumes them.
//
// Usage:
//
//	brokerd [-listen 127.0.0.1:5672] [-idle-timeout 0] [-ack-timeout 0]
//	        [-telemetry 127.0.0.1:9100]
//
// With -telemetry set, the broker serves its own ops endpoint: /metrics
// (queue depth, published/delivered/redelivered/acked, connection count,
// frame codec latency), /healthz, /debug/vars and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"gostats/internal/broker"
	"gostats/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5672", "address to listen on")
	idleTimeout := flag.Duration("idle-timeout", 0,
		"drop producer connections silent for this long (0 = never)")
	ackTimeout := flag.Duration("ack-timeout", 0,
		"requeue the in-flight message and drop consumers that fail to ack within this window (0 = never)")
	telemetryAddr := flag.String("telemetry", "", "ops endpoint address (empty = disabled)")
	flag.Parse()

	srv := broker.NewServer()
	srv.IdleTimeout = *idleTimeout
	srv.AckTimeout = *ackTimeout
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("brokerd: %v", err)
	}
	fmt.Printf("brokerd: listening on %s\n", addr)

	if *telemetryAddr != "" {
		ops, err := telemetry.Serve(*telemetryAddr, telemetry.Default())
		if err != nil {
			log.Fatalf("brokerd: %v", err)
		}
		defer ops.Close()
		ops.SetHealth("broker", nil)
		fmt.Printf("brokerd: telemetry at %s/metrics\n", ops.URL())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("brokerd: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("brokerd: close: %v", err)
	}
}
