// Command report prints consulting reports from a job table: the full
// per-job resource-use profile with targeted advice, or a fleet summary.
//
// Usage:
//
//	report -db jobs.gob -job 4000003 [-xalt xalt.jsonl]
//	report -db jobs.gob -summary
package main

import (
	"flag"
	"fmt"
	"log"

	"gostats/internal/flagging"
	"gostats/internal/reldb"
	"gostats/internal/report"
	"gostats/internal/xalt"
)

func main() {
	dbPath := flag.String("db", "jobs.gob", "job table written by jobetl")
	jobID := flag.String("job", "", "job id to report on")
	xaltPath := flag.String("xalt", "", "XALT environment store (optional)")
	summary := flag.Bool("summary", false, "print the fleet summary instead")
	flag.Parse()

	db, err := reldb.Load(*dbPath)
	if err != nil {
		log.Fatalf("report: %v", err)
	}
	flags := flagging.Default(flagging.DefaultThresholds())

	if *summary {
		text, err := report.FleetSummary(db, flags)
		if err != nil {
			log.Fatalf("report: %v", err)
		}
		fmt.Print(text)
		return
	}
	if *jobID == "" {
		log.Fatal("report: -job or -summary required")
	}
	row := db.Get(*jobID)
	if row == nil {
		log.Fatalf("report: job %s not in %s", *jobID, *dbPath)
	}
	var xrec *xalt.Record
	if *xaltPath != "" {
		xdb, err := xalt.Load(*xaltPath)
		if err != nil {
			log.Fatalf("report: %v", err)
		}
		if r, ok := xdb.Get(*jobID); ok {
			xrec = &r
		}
	}
	fmt.Print(report.Job(row, flags, xrec))
}
