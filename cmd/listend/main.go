// Command listend is the daemon-mode central consumer (Fig 2): it drains
// the broker's raw-stats queue, archives every snapshot into the central
// store as it arrives, runs the online threshold monitor, and prints
// alerts for the system administrator (§VI-B).
//
// Usage:
//
//	listend -broker 127.0.0.1:5672 -store ./central [-arch stampede]
//	        [-codec binary] [-telemetry 127.0.0.1:9102]
//	        [-data-dir ./tsdb -hot-window 2h -retain-raw 48h -retain-10m 720h]
//
// Fabric (multi-broker) mode:
//
//	listend -brokers host1:5672,host2:5672,host3:5672 -store ./central
//	        [-group-index 0 -group-count 1]
//
// With -brokers set, listend is one member of a partition-consumer
// group: it bootstraps the partition map from the first reachable
// broker, consumes its share of partitions (those where
// p % group-count == group-index) from every owner broker in parallel,
// deduplicates replicated frames by (host, sequence), and rebalances
// live when a broker dies or rejoins. A single consume-loop death
// restarts that partition's consumer with backoff; only repeated
// failures against a broker the map still considers alive are fatal.
//
// With -data-dir set, every consumed snapshot is also folded into a
// durable time-series store: a RAM hot set in front of crash-safe
// on-disk segment tiers (raw → 10 min → hourly). Points older than
// -hot-window are evicted from RAM once flushed to disk; the retention
// flags bound each tier's on-disk age (0 = keep forever). A cold-store
// write failure nacks the message so the broker redelivers — durable
// ingest is at-least-once end to end, and kill -9 loses at most the
// unsynced tail of the active segments.
//
// On SIGINT/SIGTERM the consumer shuts down gracefully: the in-flight
// message is fully archived and acknowledged before the connection
// closes, so interrupting listend never forces a redelivery or loses a
// snapshot. With -telemetry set, it serves its own ops endpoint:
// /metrics (snapshots consumed, drain lag, store-write latency, alerts,
// fabric partition ownership and replication lag), /healthz,
// /debug/vars and /debug/pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"gostats/internal/broker"
	"gostats/internal/chip"
	"gostats/internal/codec"
	"gostats/internal/fabric"
	"gostats/internal/pipeline"
	"gostats/internal/rawfile"
	"gostats/internal/realtime"
	"gostats/internal/schema"
	"gostats/internal/segstore"
	"gostats/internal/telemetry"
	"gostats/internal/tsdb"
)

func main() {
	brokerAddr := flag.String("broker", "127.0.0.1:5672", "broker address (single-broker mode)")
	brokersList := flag.String("brokers", "",
		"comma-separated fabric broker addresses (enables partition-group mode)")
	groupIndex := flag.Int("group-index", 0, "this member's index within the listener group")
	groupCount := flag.Int("group-count", 1, "total members in the listener group")
	storeDir := flag.String("store", "central", "central raw store directory")
	arch := flag.String("arch", "stampede", "node type the fleet runs (schema source)")
	codecName := flag.String("codec", "text", "archive codec for new store files: text (v1) or binary (v2)")
	telemetryAddr := flag.String("telemetry", "", "ops endpoint address (empty = disabled)")
	probeEvery := flag.Duration("probe-interval", 2*time.Second,
		"how often to probe dead fabric brokers for revival")
	dataDir := flag.String("data-dir", "", "durable time-series store directory (empty = RAM only)")
	hotWindow := flag.Duration("hot-window", 2*time.Hour, "how much recent history stays in RAM in front of the segment store")
	retainRaw := flag.Duration("retain-raw", 0, "drop raw-tier segments older than this (0 = keep forever)")
	retainMid := flag.Duration("retain-10m", 0, "drop 10m-tier segments older than this (0 = keep forever)")
	retainHour := flag.Duration("retain-1h", 0, "drop hourly-tier segments older than this (0 = keep forever)")
	syncEvery := flag.Bool("fsync", false, "fsync the segment store on every commit (power-loss durability)")
	flag.Parse()

	archiveCodec, err := codec.ParseVersion(*codecName)
	if err != nil {
		log.Fatalf("listend: %v", err)
	}

	var reg *schema.Registry
	switch *arch {
	case "stampede":
		reg = chip.StampedeNode().Registry()
	case "lonestar":
		reg = chip.LonestarNode().Registry()
	case "largemem":
		reg = chip.LargeMemNode().Registry()
	default:
		log.Fatalf("listend: unknown arch %q", *arch)
	}

	var ops *telemetry.OpsServer
	if *telemetryAddr != "" {
		var err error
		ops, err = telemetry.Serve(*telemetryAddr, telemetry.Default())
		if err != nil {
			log.Fatalf("listend: %v", err)
		}
		defer ops.Close()
		ops.SetHealth("store", nil)
		log.Printf("listend: telemetry at %s/metrics", ops.URL())
	}

	store, err := rawfile.NewStore(*storeDir)
	if err != nil {
		log.Fatalf("listend: %v", err)
	}
	store.SetCodec(archiveCodec)
	mon := realtime.NewMonitor(reg, realtime.DefaultRules())
	mon.Notify = func(a realtime.Alert) {
		fmt.Printf("ALERT %s\n", a)
	}
	l := &realtime.Listener{
		Monitor:  mon,
		Store:    store,
		Registry: reg,
		Headers: func(host string) rawfile.Header {
			return rawfile.Header{Hostname: host, Arch: *arch, Registry: reg}
		},
	}

	if *dataDir != "" {
		cs, err := segstore.Open(*dataDir, segstore.Options{
			Sync:       *syncEvery,
			RetainRaw:  retainRaw.Seconds(),
			RetainMid:  retainMid.Seconds(),
			RetainHour: retainHour.Seconds(),
		})
		if err != nil {
			log.Fatalf("listend: open segment store: %v", err)
		}
		st := cs.Stats()
		if st.RecoveredPts > 0 || st.TornTruncated > 0 || st.Quarantined > 0 {
			log.Printf("listend: segment store recovered %d active points (%d torn tails truncated, %d segments quarantined)",
				st.RecoveredPts, st.TornTruncated, st.Quarantined)
		}
		tdb := tsdb.New()
		if err := tdb.AttachCold(cs, hotWindow.Seconds()); err != nil {
			log.Fatalf("listend: %v", err)
		}
		cs.StartBackground(time.Minute)
		defer cs.Close()
		l.Ingest = tsdb.NewIngester(tdb, reg)
		log.Printf("listend: durable time-series store at %s (hot window %s)", *dataDir, hotWindow)
	}

	if *brokersList != "" {
		runFabric(l, ops, *brokersList, *groupIndex, *groupCount, *probeEvery, *storeDir)
		return
	}

	cons, err := broker.DialConsumer(*brokerAddr, broker.StatsQueue)
	if err != nil {
		if ops != nil {
			ops.SetHealth("broker", err)
		}
		log.Fatalf("listend: dial broker: %v", err)
	}
	if ops != nil {
		ops.SetHealth("broker", nil)
	}
	l.Cons = cons

	// Graceful shutdown through the shared daemon lifecycle: stop
	// consuming, let the in-flight snapshot be archived and acked, then
	// exit. Every archived snapshot is written synchronously and Run
	// drains the staged pipeline on return, so when Run returns the
	// store is flushed.
	log.Printf("listend: consuming %s from %s into %s", broker.StatsQueue, *brokerAddr, *storeDir)
	_, err = pipeline.Daemon{
		Body: func(ctx context.Context) error { return l.Run() },
		Stop: func(s os.Signal) {
			log.Printf("listend: %s: finishing in-flight message and shutting down", s)
			if ops != nil {
				ops.SetHealth("broker", fmt.Errorf("shutting down on %s", s))
			}
			l.Shutdown()
		},
	}.Run()
	if err != nil {
		log.Fatalf("listend: consume loop for queue %q: %v", broker.StatsQueue, err)
	}
	if !l.ShutdownRequested() {
		// Run returned "cleanly" but nobody asked it to stop: the broker
		// closed the connection for good. Exiting zero here would let a
		// supervisor believe the consumer is fine while the queue backs
		// up on a dead pipeline.
		log.Fatalf("listend: consume loop for queue %q ended unexpectedly (broker closed the connection); %d snapshots processed",
			broker.StatsQueue, l.Processed())
	}
	log.Printf("listend: stopped cleanly; %d snapshots processed and flushed to %s",
		l.Processed(), *storeDir)
}

// bootstrapMap fetches the partition map from the first fabric broker
// that answers.
func bootstrapMap(brokers []string) (fabric.Map, error) {
	var lastErr error
	for _, addr := range brokers {
		c, err := broker.DialTimeout(addr, 2*time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		_, payload, err := c.FetchMap()
		c.Close()
		if err != nil {
			lastErr = fmt.Errorf("broker %s: %w", addr, err)
			continue
		}
		return fabric.DecodeMap(payload)
	}
	return fabric.Map{}, fmt.Errorf("no fabric broker served a partition map: %w", lastErr)
}

// runFabric is partition-group mode: consume this member's share of
// partitions from every owner broker, dedup, rebalance live.
func runFabric(l *realtime.Listener, ops *telemetry.OpsServer, brokersList string, index, count int, probeEvery time.Duration, storeDir string) {
	brokers := strings.Split(brokersList, ",")
	for i := range brokers {
		brokers[i] = strings.TrimSpace(brokers[i])
	}
	if count <= 0 {
		count = 1
	}
	if index < 0 || index >= count {
		log.Fatalf("listend: -group-index %d out of range for -group-count %d", index, count)
	}
	m, err := bootstrapMap(brokers)
	if err != nil {
		if ops != nil {
			ops.SetHealth("broker", err)
		}
		log.Fatalf("listend: %v", err)
	}
	if ops != nil {
		ops.SetHealth("broker", nil)
	}
	view := fabric.NewView(m, broker.DefaultPolicy(), telemetry.Default())
	view.StartProber(probeEvery)
	defer view.Close()

	g := fabric.NewGroup(view)
	g.Index, g.Count = index, count
	g.Handle = l.HandleBody
	g.Start()
	log.Printf("listend: fabric group member %d/%d consuming %d partitions across %d brokers into %s (map v%d)",
		index, count, m.Partitions, len(m.Brokers), storeDir, m.Version)

	_, derr := pipeline.Daemon{
		Body: func(ctx context.Context) error {
			select {
			case <-ctx.Done():
				return nil
			case err := <-g.Err():
				// A consumer died repeatedly against a broker the map
				// still considers alive — the error names partition and
				// broker.
				return err
			case <-l.Fatal():
				// A sink error poisoned the listener pipeline: every
				// further delivery will be refused, so exit with the
				// error instead of letting the group retry forever —
				// the pre-pipeline contract (sink failure is fatal).
				return l.FatalErr()
			}
		},
		Stop: func(s os.Signal) {
			log.Printf("listend: %s: finishing in-flight messages and shutting down", s)
			if ops != nil {
				ops.SetHealth("broker", fmt.Errorf("shutting down on %s", s))
			}
		},
	}.Run()
	g.Stop()
	l.Close()
	if derr != nil {
		log.Fatalf("listend: %v", derr)
	}
	st := g.Stats()
	log.Printf("listend: stopped cleanly; %d snapshots handled (%d deduped, %d consumer restarts)",
		st.Handled, st.Deduped, st.Restarts)
}
