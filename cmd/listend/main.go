// Command listend is the daemon-mode central consumer (Fig 2): it drains
// the broker's raw-stats queue, archives every snapshot into the central
// store as it arrives, runs the online threshold monitor, and prints
// alerts for the system administrator (§VI-B).
//
// Usage:
//
//	listend -broker 127.0.0.1:5672 -store ./central [-arch stampede]
//	        [-codec binary] [-telemetry 127.0.0.1:9102]
//
// On SIGINT/SIGTERM the consumer shuts down gracefully: the in-flight
// message is fully archived and acknowledged before the connection
// closes, so interrupting listend never forces a redelivery or loses a
// snapshot. With -telemetry set, it serves its own ops endpoint:
// /metrics (snapshots consumed, drain lag, store-write latency, alerts),
// /healthz, /debug/vars and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"gostats/internal/broker"
	"gostats/internal/chip"
	"gostats/internal/codec"
	"gostats/internal/rawfile"
	"gostats/internal/realtime"
	"gostats/internal/schema"
	"gostats/internal/telemetry"
)

func main() {
	brokerAddr := flag.String("broker", "127.0.0.1:5672", "broker address")
	storeDir := flag.String("store", "central", "central raw store directory")
	arch := flag.String("arch", "stampede", "node type the fleet runs (schema source)")
	codecName := flag.String("codec", "text", "archive codec for new store files: text (v1) or binary (v2)")
	telemetryAddr := flag.String("telemetry", "", "ops endpoint address (empty = disabled)")
	flag.Parse()

	archiveCodec, err := codec.ParseVersion(*codecName)
	if err != nil {
		log.Fatalf("listend: %v", err)
	}

	var reg *schema.Registry
	switch *arch {
	case "stampede":
		reg = chip.StampedeNode().Registry()
	case "lonestar":
		reg = chip.LonestarNode().Registry()
	case "largemem":
		reg = chip.LargeMemNode().Registry()
	default:
		log.Fatalf("listend: unknown arch %q", *arch)
	}

	var ops *telemetry.OpsServer
	if *telemetryAddr != "" {
		var err error
		ops, err = telemetry.Serve(*telemetryAddr, telemetry.Default())
		if err != nil {
			log.Fatalf("listend: %v", err)
		}
		defer ops.Close()
		ops.SetHealth("store", nil)
		log.Printf("listend: telemetry at %s/metrics", ops.URL())
	}

	store, err := rawfile.NewStore(*storeDir)
	if err != nil {
		log.Fatalf("listend: %v", err)
	}
	store.SetCodec(archiveCodec)
	cons, err := broker.DialConsumer(*brokerAddr, broker.StatsQueue)
	if err != nil {
		if ops != nil {
			ops.SetHealth("broker", err)
		}
		log.Fatalf("listend: dial broker: %v", err)
	}
	if ops != nil {
		ops.SetHealth("broker", nil)
	}
	mon := realtime.NewMonitor(reg, realtime.DefaultRules())
	mon.Notify = func(a realtime.Alert) {
		fmt.Printf("ALERT %s\n", a)
	}
	l := &realtime.Listener{
		Cons:     cons,
		Monitor:  mon,
		Store:    store,
		Registry: reg,
		Headers: func(host string) rawfile.Header {
			return rawfile.Header{Hostname: host, Arch: *arch, Registry: reg}
		},
	}

	// Graceful shutdown: stop consuming, let the in-flight snapshot be
	// archived and acked, then exit. Every archived snapshot is written
	// synchronously, so when Run returns the store is flushed.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("listend: %s: finishing in-flight message and shutting down", s)
		if ops != nil {
			ops.SetHealth("broker", fmt.Errorf("shutting down on %s", s))
		}
		l.Shutdown()
	}()

	log.Printf("listend: consuming %s from %s into %s", broker.StatsQueue, *brokerAddr, *storeDir)
	if err := l.Run(); err != nil {
		log.Fatalf("listend: consume loop for queue %q: %v", broker.StatsQueue, err)
	}
	if !l.ShutdownRequested() {
		// Run returned "cleanly" but nobody asked it to stop: the broker
		// closed the connection for good. Exiting zero here would let a
		// supervisor believe the consumer is fine while the queue backs
		// up on a dead pipeline.
		log.Fatalf("listend: consume loop for queue %q ended unexpectedly (broker closed the connection); %d snapshots processed",
			broker.StatsQueue, l.Processed())
	}
	log.Printf("listend: stopped cleanly; %d snapshots processed and flushed to %s",
		l.Processed(), *storeDir)
}
