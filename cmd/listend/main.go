// Command listend is the daemon-mode central consumer (Fig 2): it drains
// the broker's raw-stats queue, archives every snapshot into the central
// store as it arrives, runs the online threshold monitor, and prints
// alerts for the system administrator (§VI-B).
//
// Usage:
//
//	listend -broker 127.0.0.1:5672 -store ./central [-arch stampede]
package main

import (
	"flag"
	"fmt"
	"log"

	"gostats/internal/broker"
	"gostats/internal/chip"
	"gostats/internal/rawfile"
	"gostats/internal/realtime"
	"gostats/internal/schema"
)

func main() {
	brokerAddr := flag.String("broker", "127.0.0.1:5672", "broker address")
	storeDir := flag.String("store", "central", "central raw store directory")
	arch := flag.String("arch", "stampede", "node type the fleet runs (schema source)")
	flag.Parse()

	var reg *schema.Registry
	switch *arch {
	case "stampede":
		reg = chip.StampedeNode().Registry()
	case "lonestar":
		reg = chip.LonestarNode().Registry()
	case "largemem":
		reg = chip.LargeMemNode().Registry()
	default:
		log.Fatalf("listend: unknown arch %q", *arch)
	}

	store, err := rawfile.NewStore(*storeDir)
	if err != nil {
		log.Fatalf("listend: %v", err)
	}
	cons, err := broker.DialConsumer(*brokerAddr, broker.StatsQueue)
	if err != nil {
		log.Fatalf("listend: dial broker: %v", err)
	}
	mon := realtime.NewMonitor(reg, realtime.DefaultRules())
	mon.Notify = func(a realtime.Alert) {
		fmt.Printf("ALERT %s\n", a)
	}
	l := &realtime.Listener{
		Cons:    cons,
		Monitor: mon,
		Store:   store,
		Headers: func(host string) rawfile.Header {
			return rawfile.Header{Hostname: host, Arch: *arch, Registry: reg}
		},
	}
	log.Printf("listend: consuming %s from %s into %s", broker.StatsQueue, *brokerAddr, *storeDir)
	if err := l.Run(); err != nil {
		log.Fatalf("listend: %v", err)
	}
	log.Printf("listend: broker closed after %d snapshots", l.Processed())
}
