module gostats

go 1.22
