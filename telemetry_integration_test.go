package gostats

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gostats/internal/broker"
	"gostats/internal/chip"
	"gostats/internal/collect"
	"gostats/internal/hwsim"
	"gostats/internal/model"
	"gostats/internal/portal"
	"gostats/internal/rawfile"
	"gostats/internal/realtime"
	"gostats/internal/reldb"
	"gostats/internal/telemetry"
)

// TestSelfTelemetryEndToEnd drives the daemon-mode pipeline — collector
// -> reliable publisher -> broker -> listener -> store, plus the portal
// — with every component wired to ONE registry, then scrapes the real
// ops HTTP endpoint and checks the monitor's self-description: the
// collection-cost histogram holding the paper's 0.09 s budget, the
// broker queue counters, the listener drain lag, and the portal request
// latencies.
func TestSelfTelemetryEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()

	// Broker.
	srv := broker.NewServer()
	srv.Metrics = reg
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Node daemon: collector + redialing publisher.
	cfg := chip.StampedeNode()
	node, err := hwsim.NewNode("c401-101", cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	col := collect.New(node)
	col.Metrics = reg
	pub := broker.NewReliablePublisher(addr, broker.StatsQueue)
	pub.Metrics = reg
	defer pub.Close()
	daemon := collect.NewDaemonAgent(col, pub)

	// Central consumer archiving to the store.
	cons, err := broker.DialConsumer(addr, broker.StatsQueue)
	if err != nil {
		t.Fatal(err)
	}
	store, err := rawfile.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const want = 6
	done := make(chan struct{})
	var seen int
	l := &realtime.Listener{
		Cons:    cons,
		Monitor: realtime.NewMonitor(cfg.Registry(), realtime.DefaultRules()),
		Store:   store,
		Headers: func(host string) rawfile.Header { return col.Header() },
		Metrics: reg,
		OnSnapshot: func(model.Snapshot) {
			if seen++; seen == want {
				close(done)
			}
		},
	}
	runErr := make(chan error, 1)
	go func() { runErr <- l.Run() }()

	now := 0.0
	for i := 0; i < want; i++ {
		node.Advance(600, hwsim.Demand{CPUUserFrac: 0.5, IPC: 1})
		now += 600
		if err := daemon.Tick(now, []string{"42"}, ""); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("listener did not drain the stream")
	}

	// Portal over an empty job table; two requests to generate route
	// telemetry.
	p := portal.NewServer(reldb.New(), cfg.Registry(), nil)
	p.Metrics = reg
	ps := httptest.NewServer(p)
	defer ps.Close()
	httpGet(t, ps.URL+"/")
	httpGet(t, ps.URL+"/jobs")

	// Scrape over real HTTP, exactly as a fleet Prometheus would.
	ops, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()
	ops.SetHealth("pipeline", nil)
	text := httpGet(t, ops.URL()+"/metrics")

	// Every pipeline layer must be represented.
	for _, series := range []string{
		`gostats_collect_seconds_bucket{le="0.09"}`,
		"gostats_collect_seconds_sum",
		`gostats_collect_records_total{class="cpu"}`,
		`gostats_broker_queue_depth{queue="gostats.raw"}`,
		`gostats_broker_published_total{queue="gostats.raw"}`,
		`gostats_broker_redelivered_total{queue="gostats.raw"}`,
		"gostats_broker_connections",
		`gostats_publish_seconds_count{queue="gostats.raw"}`,
		"gostats_listen_snapshots_total",
		"gostats_listen_drain_lag_seconds",
		"gostats_listen_store_write_seconds_count",
		`gostats_portal_request_seconds_count{route="/jobs"}`,
		`gostats_portal_requests_total{route="/jobs",status="200"}`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	vals := telemetry.ParseExposition(text)
	if got := vals["gostats_collect_seconds_count"]; got != want {
		t.Errorf("collections = %g, want %d", got, want)
	}
	// The continuously-verified overhead claim: mean sweep cost within
	// the paper's 0.09 s of one core.
	mean := vals["gostats_collect_seconds_sum"] / vals["gostats_collect_seconds_count"]
	if mean <= 0 || mean > 0.09 {
		t.Errorf("mean collection cost = %g s, want (0, 0.09]", mean)
	}
	if got := vals[`gostats_broker_published_total{queue="gostats.raw"}`]; got != want {
		t.Errorf("published = %g, want %d", got, want)
	}
	if got := vals[`gostats_portal_requests_total{route="/jobs",status="200"}`]; got != 1 {
		t.Errorf("portal /jobs requests = %g, want 1", got)
	}

	// Healthz answers for the whole pipeline.
	if body := httpGet(t, ops.URL()+"/healthz"); !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("healthz = %s", body)
	}

	// Graceful drain to finish: nothing lost, nothing redelivered.
	l.Shutdown()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	if qs := srv.QueueCounts(broker.StatsQueue); qs.Redelivered != 0 {
		t.Errorf("redelivered = %d, want 0", qs.Redelivered)
	}
}
