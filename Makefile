GO ?= go

.PHONY: check vet fmt build test race bench

## check: everything CI runs — vet, formatting, build, tests under -race
check: vet fmt build race

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .
