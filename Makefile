GO ?= go

## BENCH_PR numbers this PR's benchmark record; bench diffs it against
## the latest earlier BENCH_PR*.json automatically.
BENCH_PR ?= 10

.PHONY: check vet vuln staticcheck fmt build test race chaos watchparity apiload bench benchsmoke fuzzsmoke

## check: everything CI runs — vet, vuln scan, static analysis, formatting, build, chaos smoke, tests under -race, watch parity audit, api load smoke, fuzz smoke, benchmark smoke
check: vet vuln staticcheck fmt build chaos race watchparity apiload fuzzsmoke benchsmoke

vet:
	$(GO) vet ./...

## vuln: best-effort govulncheck — advisory only, and a no-op where the
## tool or the vulndb is unreachable (offline CI), so it never fails check.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "vuln: govulncheck reported findings (non-fatal)"; \
	else \
		echo "vuln: govulncheck not installed, skipping"; \
	fi

## staticcheck: best-effort static analysis — advisory only, and a no-op
## where the tool is not installed, so it never fails check offline.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... || echo "staticcheck: findings reported (non-fatal)"; \
	else \
		echo "staticcheck: not installed, skipping"; \
	fi

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## chaos: fault-injection smoke — the transport robustness suite under
## -race, a 3-broker fabric simcluster run that kills the busiest
## broker mid-run and must rebalance live and conserve every snapshot
## (emitted == archived + spooled, zero duplicates past dedup), and the
## storage restart audit that SIGKILLs the segment store mid-ingest and
## mid-compaction and must recover every synced point on reopen.
chaos:
	$(GO) test -run Chaos -race ./...
	@dir="$$(mktemp -d)"; rc=0; \
	$(GO) run -race ./cmd/simcluster -mode daemon -nodes 12 -days 0.5 \
		-brokers 3 -chaos-kill-broker -out "$$dir" -telemetry off \
		> "$$dir/run.log" 2>&1 || rc=$$?; \
	grep -E '^simcluster (fabric|chaos):' "$$dir/run.log"; \
	[ "$$rc" -eq 0 ] || tail -5 "$$dir/run.log"; \
	rm -rf "$$dir"; exit $$rc
	@dir="$$(mktemp -d)"; rc=0; \
	$(GO) run -race ./cmd/simcluster -chaos-kill-store -out "$$dir" \
		-telemetry off > "$$dir/run.log" 2>&1 || rc=$$?; \
	grep -E '^simcluster store-chaos:' "$$dir/run.log"; \
	[ "$$rc" -eq 0 ] || tail -5 "$$dir/run.log"; \
	rm -rf "$$dir"; exit $$rc

## watchparity: end-to-end detection audit — a simcluster -watch run must
## hit the online/post-hoc flag parity floor (exits non-zero below 95%),
## with provenance tracing live on every hop.
watchparity:
	@dir="$$(mktemp -d)"; rc=0; \
	$(GO) run ./cmd/simcluster -mode daemon -nodes 8 -days 0.5 -watch \
		-out "$$dir" -telemetry off > "$$dir/run.log" 2>&1 || rc=$$?; \
	grep -E '^simcluster watch:' "$$dir/run.log"; \
	[ "$$rc" -eq 0 ] || tail -5 "$$dir/run.log"; \
	rm -rf "$$dir"; exit $$rc

## apiload: versioned query API smoke — a simcluster run with a durable
## store drives 10k concurrent /api/v1 readers in-process through the
## mixed jobs/metrics/top-N workload and must report throughput, p50/p95
## latency, cache hit ratio, and rate-limit rejections.
apiload:
	@dir="$$(mktemp -d)"; rc=0; \
	$(GO) run ./cmd/simcluster -mode daemon -nodes 4 -days 0.5 \
		-data-dir "$$dir/tsdb" -portal-readers 10000 -portal-requests 20000 \
		-out "$$dir" -telemetry off > "$$dir/run.log" 2>&1 || rc=$$?; \
	grep -E '^simcluster api-load:' "$$dir/run.log"; \
	[ "$$rc" -eq 0 ] || tail -5 "$$dir/run.log"; \
	rm -rf "$$dir"; exit $$rc

## bench: run the root benchmark suite, record it machine-readably in
## BENCH_PR$(BENCH_PR).json (name, ns/op, B/op, allocs/op), and diff
## against the newest earlier PR's baseline to surface regressions.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' . | tee BENCH_PR$(BENCH_PR).txt
	$(GO) run ./cmd/benchjson -o BENCH_PR$(BENCH_PR).json -baseline auto < BENCH_PR$(BENCH_PR).txt

## benchsmoke: every benchmark runs once (-short skips the long suite) —
## catches benchmarks that break without paying for full measurement.
benchsmoke:
	$(GO) test -short -bench=. -benchtime=1x -run='^$$' . > /dev/null

## fuzzsmoke: a few hundred iterations of each fuzz target against its
## seed-derived corpus — catches decoder panics without a long campaign.
fuzzsmoke:
	$(GO) test -run='^$$' -fuzz=FuzzBinaryDecode -fuzztime=300x ./internal/codec/
	$(GO) test -run='^$$' -fuzz=FuzzParseRecover -fuzztime=300x ./internal/rawfile/
	$(GO) test -run='^$$' -fuzz=FuzzSegmentDecode -fuzztime=300x ./internal/segstore/
