GO ?= go

.PHONY: check vet fmt build test race chaos bench benchsmoke

## check: everything CI runs — vet, formatting, build, chaos smoke, tests under -race, benchmark smoke
check: vet fmt build chaos race benchsmoke

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## chaos: fault-injection smoke — the transport robustness suite under -race
chaos:
	$(GO) test -run Chaos -race ./...

## bench: run the root benchmark suite and record it machine-readably in
## BENCH_PR4.json (name, ns/op, B/op, allocs/op) for the perf trajectory.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' . | tee BENCH_PR4.txt
	$(GO) run ./cmd/benchjson -o BENCH_PR4.json < BENCH_PR4.txt

## benchsmoke: every benchmark runs once (-short skips the long suite) —
## catches benchmarks that break without paying for full measurement.
benchsmoke:
	$(GO) test -short -bench=. -benchtime=1x -run='^$$' . > /dev/null
