GO ?= go

.PHONY: check vet fmt build test race chaos bench

## check: everything CI runs — vet, formatting, build, chaos smoke, tests under -race
check: vet fmt build chaos race

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## chaos: fault-injection smoke — the transport robustness suite under -race
chaos:
	$(GO) test -run Chaos -race ./...

bench:
	$(GO) test -bench=. -benchmem .
