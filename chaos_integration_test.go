package gostats

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gostats/internal/broker"
	"gostats/internal/chip"
	"gostats/internal/collect"
	"gostats/internal/faultnet"
	"gostats/internal/hwsim"
	"gostats/internal/model"
	"gostats/internal/rawfile"
	"gostats/internal/realtime"
	"gostats/internal/spool"
	"gostats/internal/telemetry"
	"gostats/internal/trace"
)

// TestChaosBrokerOutageConservesSnapshots drives the full daemon-mode
// pipeline — collectors -> reliable publishers -> broker -> listener ->
// store — through a fault-injecting network that tears connections
// mid-frame, then hits the fleet with a hard broker outage spanning
// several collection rounds. The invariant under test is the PR's
// robustness guarantee: every snapshot a node collects is either
// archived centrally or still sits in that node's durable spool;
// outages and resets cost latency and duplicates, never data.
func TestChaosBrokerOutageConservesSnapshots(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Provenance tracing rides the same run: stamps must survive the
	// spool round-trip and the freshness gauges must recover once the
	// outage ends and the spools drain.
	rec := trace.NewRecorder(reg)

	srv := broker.NewServer()
	srv.Metrics = reg
	srv.IdleTimeout = 10 * time.Second
	srv.AckTimeout = 5 * time.Second
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// All node traffic crosses one fault domain that also tears
	// connections mid-frame on a deterministic schedule.
	fnet := faultnet.New(faultnet.Faults{Seed: 11, ResetAfterBytes: 4 << 10})

	pol := broker.Policy{
		MaxAttempts:      3,
		BackoffMin:       time.Millisecond,
		BackoffMax:       10 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerWindow:    25 * time.Millisecond,
		BreakerMaxWindow: 100 * time.Millisecond,
	}

	cfg := chip.StampedeNode()
	const (
		nNodes      = 3
		ticks       = 12
		outageStart = 4 // outage covers rounds [outageStart, outageEnd)
		outageEnd   = 8
		interval    = 600.0
	)
	type nodeRT struct {
		daemon *collect.DaemonAgent
		node   *hwsim.Node
		pub    *broker.ReliablePublisher
		sp     *spool.Spool
	}
	nodes := make([]*nodeRT, nNodes)
	spoolRoot := t.TempDir()
	for i := range nodes {
		host := fmt.Sprintf("c401-%03d", i+1)
		hw, err := hwsim.NewNode(host, cfg, int64(20+i))
		if err != nil {
			t.Fatal(err)
		}
		col := collect.New(hw)
		col.Metrics = reg
		col.Trace = rec
		pub := broker.NewReliablePublisher(addr, broker.StatsQueue)
		pub.Policy = pol
		pub.Metrics = reg
		pub.Trace = rec
		pub.Dialer = fnet.Dialer(func(a string) (net.Conn, error) {
			return net.DialTimeout("tcp", a, time.Second)
		})
		sp, err := spool.Open(filepath.Join(spoolRoot, host), col.Header(),
			spool.Options{Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		pub.AttachSpool(sp)
		nodes[i] = &nodeRT{daemon: collect.NewDaemonAgent(col, pub), node: hw, pub: pub, sp: sp}
		defer pub.Close()
		defer sp.Close()
	}

	// Central consumer, recording everything it archives.
	cons, err := broker.DialConsumer(addr, broker.StatsQueue)
	if err != nil {
		t.Fatal(err)
	}
	store, err := rawfile.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	collected := map[string]bool{}
	lastSeen := map[string]float64{}
	duplicates := 0
	var disorder []string
	l := &realtime.Listener{
		Cons:    cons,
		Monitor: realtime.NewMonitor(cfg.Registry(), realtime.DefaultRules()),
		Store:   store,
		Metrics: reg,
		Trace:   rec,
		Headers: func(host string) rawfile.Header {
			return rawfile.Header{Hostname: host, Arch: "sandybridge", Registry: cfg.Registry()}
		},
		OnSnapshot: func(s model.Snapshot) {
			mu.Lock()
			defer mu.Unlock()
			k := fmt.Sprintf("%s@%.3f", s.Host, s.Time)
			if collected[k] {
				duplicates++ // confirmed-publish retries may duplicate
				return
			}
			collected[k] = true
			// First deliveries must stay time-ordered per host: nodes
			// publish in order and spool replay is FIFO.
			if last, ok := lastSeen[s.Host]; ok && s.Time < last {
				disorder = append(disorder, fmt.Sprintf("%s: %.0f after %.0f", s.Host, s.Time, last))
			} else {
				lastSeen[s.Host] = s.Time
			}
		},
	}
	runErr := make(chan error, 1)
	go func() { runErr <- l.Run() }()

	emitted := map[string]bool{}
	now := 0.0
	for tick := 0; tick < ticks; tick++ {
		if tick == outageStart {
			fnet.StartOutage()
		}
		if tick == outageEnd {
			fnet.StopOutage()
		}
		now += interval
		for _, rt := range nodes {
			rt.node.Advance(interval, hwsim.Demand{CPUUserFrac: 0.4, IPC: 1})
			// Tick must never fail: during the outage the snapshot goes
			// to the spool, not to the floor.
			if err := rt.daemon.Tick(now, []string{"42"}, ""); err != nil {
				t.Fatalf("tick %d: %v", tick, err)
			}
			emitted[fmt.Sprintf("%s@%.3f", rt.node.Host(), now)] = true
		}
	}

	// Broker is back: every spool must drain.
	deadline := time.Now().Add(20 * time.Second)
	for {
		depth := 0
		for _, rt := range nodes {
			depth += rt.sp.Depth()
		}
		if depth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spools never drained, %d snapshots stranded", depth)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And the listener must archive every distinct snapshot.
	for {
		mu.Lock()
		got := len(collected)
		mu.Unlock()
		if got >= len(emitted) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("archived %d of %d snapshots before timeout", got, len(emitted))
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	for k := range emitted {
		if !collected[k] {
			t.Errorf("snapshot %s lost", k)
		}
	}
	if len(disorder) > 0 {
		t.Errorf("per-host delivery order violated: %v", disorder)
	}
	var st broker.TransportStats
	for _, rt := range nodes {
		ps := rt.pub.TransportStats()
		st.Published += ps.Published
		st.Redials += ps.Redials
		st.Dropped += ps.Dropped
		st.Spooled += ps.Spooled
		st.Replayed += ps.Replayed
	}
	if st.Dropped != 0 {
		t.Errorf("transport dropped %d snapshots: %+v", st.Dropped, st)
	}
	if st.Spooled == 0 || st.Replayed != st.Spooled {
		t.Errorf("spool fallback unused or incomplete: %+v", st)
	}
	if fnet.Stats().Resets == 0 {
		t.Error("fault schedule injected no resets; the chaos proved nothing")
	}

	// The node-side robustness telemetry is visible exactly where a
	// fleet operator would look for it.
	vals := telemetry.ParseExposition(reg.Exposition())
	if got := vals[`gostats_publish_spooled_total{queue="gostats.raw"}`]; got != float64(st.Spooled) {
		t.Errorf("spooled metric = %g, want %d", got, st.Spooled)
	}
	if got := vals[`gostats_publish_replayed_total{queue="gostats.raw"}`]; got != float64(st.Replayed) {
		t.Errorf("replayed metric = %g, want %d", got, st.Replayed)
	}
	for _, rt := range nodes {
		series := fmt.Sprintf("gostats_spool_depth{host=%q}", rt.node.Host())
		if got, ok := vals[series]; !ok || got != 0 {
			t.Errorf("%s = %g, want 0 after drain", series, got)
		}
		backlog := fmt.Sprintf("gostats_spool_replay_backlog{host=%q}", rt.node.Host())
		if got, ok := vals[backlog]; !ok || got != 0 {
			t.Errorf("%s = %g, want 0 after drain", backlog, got)
		}
	}

	// Provenance survived the outage: snapshots that detoured through
	// the spool carry a replay stamp, and every host's freshness gauge
	// recovered to "seconds behind" once its backlog replayed. The
	// outage stranded several rounds, so an unrecovered host would sit
	// many simulated rounds (and wall seconds) stale here.
	rec.RefreshFreshness()
	sum := rec.Snapshot()
	var replayHops uint64
	for _, st := range sum.Stages {
		if st.Stage == model.StageSpoolReplay.String() {
			replayHops = st.Count
		}
	}
	if replayHops == 0 {
		t.Error("no spool_replay stage latency recorded; trace stamps did not survive the spool")
	}
	fresh := map[string]float64{}
	for _, h := range sum.Hosts {
		fresh[h.Host] = h.FreshnessSeconds
	}
	for _, rt := range nodes {
		f, ok := fresh[rt.node.Host()]
		if !ok {
			t.Errorf("host %s has no freshness gauge after drain", rt.node.Host())
			continue
		}
		if f < 0 || f > 60 {
			t.Errorf("host %s freshness %.1f s after drain; gauge did not recover", rt.node.Host(), f)
		}
	}

	l.Shutdown()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
}
